package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	dcs "github.com/dcslib/dcs"
)

// doJob runs one request and decodes the JSON response on any 2xx status
// (job submits return 202, unlike doJSON's 200-only decoding).
func doJob(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	raw := []byte(nil)
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code >= 200 && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// pollJob polls GET /v1/jobs/{id} until the job reaches want (or fails the
// test at the deadline).
func pollJob(t *testing.T, s *Server, id, want string, d time.Duration) JobInfo {
	t.Helper()
	var last JobInfo
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if code := doJob(t, s, http.MethodGet, "/v1/jobs/"+id, nil, &last); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if last.Status == want {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %q, want %q", id, last.Status, want)
	return last
}

// slowSnapshotPair registers a pair whose avgdeg top-k mining runs for many
// seconds uncancelled: g2 holds `pairs` vertex-disjoint positive edges, so
// every edge is its own contrast subgraph and the top-k loop re-peels the
// whole ~2·pairs-vertex graph once per mined edge. Cancellation, by
// contrast, lands within one checkpoint interval of the peeling loop —
// microseconds — which is what the tests below assert (with CI-safe
// slack).
func slowSnapshotPair(t *testing.T, s *Server, pairs int) {
	t.Helper()
	n := 2 * pairs
	b1 := dcs.NewBuilder(n)
	b2 := dcs.NewBuilder(n)
	for i := 0; i < pairs; i++ {
		// Distinct weights keep the mining order deterministic.
		b2.AddEdge(2*i, 2*i+1, 1+float64(i%97)/97)
	}
	s.Store().Put("slow1", b1.Build())
	s.Store().Put("slow2", b2.Build())
}

// slowRequest mines far more top-k subgraphs than any test waits for.
func slowRequest() DCSRequest {
	return DCSRequest{Measure: "avgdeg", G1: "slow1", G2: "slow2", K: 1 << 20}
}

func TestJobLifecycle(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	upload(t, s)

	// Submit, then poll to completion.
	var info JobInfo
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", req, &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if info.ID == "" || info.Status != "queued" || info.Measure != "avgdeg" {
		t.Fatalf("unexpected submit response %+v", info)
	}
	done := pollJob(t, s, info.ID, "done", 10*time.Second)
	if done.Result == nil || done.StartedAt == nil || done.FinishedAt == nil {
		t.Fatalf("done job missing result or timestamps: %+v", done)
	}
	if done.Result.Interrupted {
		t.Fatal("uncancelled job reported an interrupted result")
	}
	// The async result matches the synchronous endpoint's.
	var sync DCSResponse
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &sync); code != http.StatusOK {
		t.Fatalf("sync solve: status %d", code)
	}
	if len(done.Result.Results) != len(sync.Results) ||
		done.Result.Results[0].Density != sync.Results[0].Density {
		t.Fatalf("async result %+v differs from sync %+v", done.Result.Results, sync.Results)
	}

	// Listing includes the job; health counts it.
	var list []JobInfo
	if code := doJob(t, s, http.MethodGet, "/v1/jobs", nil, &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: status %d, %d jobs", code, len(list))
	}
	var h HealthResponse
	doJSON(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.Jobs.Done != 1 || h.Jobs.Retained != 1 {
		t.Fatalf("health job stats %+v, want one done/retained", h.Jobs)
	}

	// Cancelling a finished job is a no-op.
	var after JobInfo
	if code := doJob(t, s, http.MethodDelete, "/v1/jobs/"+info.ID, nil, &after); code != http.StatusOK {
		t.Fatalf("delete finished: status %d", code)
	}
	if after.Status != "done" {
		t.Fatalf("delete flipped a finished job to %q", after.Status)
	}
}

func TestJobErrors(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	upload(t, s)
	cases := []struct {
		name string
		req  DCSRequest
		want int
	}{
		{"missing measure", DCSRequest{G1: "old", G2: "new"}, http.StatusBadRequest},
		{"bad measure", DCSRequest{Measure: "modularity", G1: "old", G2: "new"}, http.StatusBadRequest},
		{"unknown snapshot", DCSRequest{Measure: "avgdeg", G1: "nope", G2: "new"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code := doJob(t, s, http.MethodPost, "/v1/jobs", c.req, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	if code := doJob(t, s, http.MethodGet, "/v1/jobs/job-999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := doJob(t, s, http.MethodPut, "/v1/jobs", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs: status %d, want 405", code)
	}
	// Unknown ids 404 before the method check; a real job answers 405 to
	// unsupported methods.
	if code := doJob(t, s, http.MethodPut, "/v1/jobs/job-999", nil, nil); code != http.StatusNotFound {
		t.Errorf("PUT unknown job: status %d, want 404", code)
	}
	var info JobInfo
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}, &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollJob(t, s, info.ID, "done", 10*time.Second)
	if code := doJob(t, s, http.MethodPut, "/v1/jobs/"+info.ID, nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs/{id}: status %d, want 405", code)
	}
}

// TestJobCancelFreesPoolSlot is the acceptance test for the async path: a
// long solve submitted via POST /v1/jobs is cancelled with DELETE, the
// solver stops within one checkpoint interval (asserted with generous CI
// slack), the partial result is retained, and the pool slot frees up for the
// next request.
func TestJobCancelFreesPoolSlot(t *testing.T) {
	s := New(Config{PoolSize: 1})
	defer s.Close()
	upload(t, s)
	slowSnapshotPair(t, s, 15000)

	var info JobInfo
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", slowRequest(), &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollJob(t, s, info.ID, "running", 10*time.Second)

	cancelAt := time.Now()
	if code := doJob(t, s, http.MethodDelete, "/v1/jobs/"+info.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	cancelled := pollJob(t, s, info.ID, "cancelled", 5*time.Second)
	if lat := time.Since(cancelAt); lat > 5*time.Second {
		t.Fatalf("cancellation latency %v", lat)
	}
	if cancelled.Result == nil || !cancelled.Result.Interrupted {
		t.Fatalf("cancelled job lost its partial result: %+v", cancelled)
	}

	// The slot is free: a small synchronous request on the pool-of-one
	// server completes immediately.
	waitFor(t, 5*time.Second, func() bool { return s.pool.InFlight() == 0 },
		"pool slot not freed after cancellation")
	var resp DCSResponse
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("post-cancel solve: status %d", code)
	}
}

// TestSyncDisconnectFreesSlot is the acceptance test for the synchronous
// path: when the client of a long /v1/dcs request disconnects, the solver
// stops consuming CPU and the pool slot frees without waiting for the solve
// to finish.
func TestSyncDisconnectFreesSlot(t *testing.T) {
	s := New(Config{PoolSize: 1})
	defer s.Close()
	upload(t, s)
	slowSnapshotPair(t, s, 15000)

	ctx, cancel := context.WithCancel(context.Background())
	raw, _ := json.Marshal(slowRequest())
	req := httptest.NewRequest(http.MethodPost, "/v1/dcs", bytes.NewReader(raw)).WithContext(ctx)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	waitFor(t, 5*time.Second, func() bool { return s.pool.InFlight() == 1 },
		"slow request never took the slot")
	cancel() // the client goes away
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("handler kept computing after the client disconnected")
	}
	waitFor(t, 5*time.Second, func() bool { return s.pool.InFlight() == 0 },
		"pool slot not freed after disconnect")
}

// TestSolveTimeoutReturnsPartial covers the SolveTimeout knob on the
// synchronous path: the deadline interrupts the solver, which still answers
// 200 with its best-so-far results and "interrupted": true.
func TestSolveTimeoutReturnsPartial(t *testing.T) {
	s := New(Config{SolveTimeout: 50 * time.Millisecond})
	defer s.Close()
	slowSnapshotPair(t, s, 15000)

	start := time.Now()
	var resp DCSResponse
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", slowRequest(), &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Interrupted {
		t.Fatal("deadline-cut response not marked interrupted")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out solve still ran %v", elapsed)
	}
	// Partial results (if any) are validated subgraphs of the fixture: each
	// is one of the planted disjoint edges.
	for _, r := range resp.Results {
		if len(r.S) != 2 {
			t.Fatalf("unexpected partial subgraph %v", r.S)
		}
	}
}

func TestJobRetentionEviction(t *testing.T) {
	s := New(Config{JobRetention: 2})
	defer s.Close()
	upload(t, s)
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	ids := make([]string, 3)
	for i := range ids {
		var info JobInfo
		if code := doJob(t, s, http.MethodPost, "/v1/jobs", req, &info); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids[i] = info.ID
		pollJob(t, s, info.ID, "done", 10*time.Second)
	}
	// Oldest finished job is gone; the two newest are retained.
	if code := doJob(t, s, http.MethodGet, "/v1/jobs/"+ids[0], nil, nil); code != http.StatusNotFound {
		t.Fatalf("evicted job: status %d, want 404", code)
	}
	for _, id := range ids[1:] {
		if code := doJob(t, s, http.MethodGet, "/v1/jobs/"+id, nil, nil); code != http.StatusOK {
			t.Fatalf("retained job %s: status %d", id, code)
		}
	}
	var h HealthResponse
	doJSON(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.Jobs.Done != 3 || h.Jobs.Retained != 2 {
		t.Fatalf("job stats %+v, want done=3 retained=2", h.Jobs)
	}
}

func TestJobQueueBound(t *testing.T) {
	s := New(Config{PoolSize: 1, MaxQueue: 1})
	defer s.Close()
	upload(t, s)
	// Occupy the only slot so submitted jobs stay queued.
	if err := s.pool.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	var first JobInfo
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", req, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	// With one job active the bound rejects the next submission outright.
	waitFor(t, time.Second, func() bool { return s.jobs.active() == 1 }, "job never registered")
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("over-bound submit: status %d, want 503", code)
	}
	s.pool.release()
	pollJob(t, s, first.ID, "done", 10*time.Second)
}

// TestJobNotBouncedBySyncQueueBound: an accepted job must run even when the
// synchronous waiting line is at its MaxQueue bound — jobs are
// admission-controlled at submit time and do not compete for sync queue
// positions.
func TestJobNotBouncedBySyncQueueBound(t *testing.T) {
	s := New(Config{PoolSize: 1, MaxQueue: 1, QueueTimeout: 30 * time.Second})
	defer s.Close()
	upload(t, s)
	// Occupy the slot, then fill the sync waiting line to its bound.
	if err := s.pool.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	syncDone := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"})
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/dcs", bytes.NewReader(raw)))
		syncDone <- rec.Code
	}()
	waitFor(t, 5*time.Second, func() bool { return s.pool.Waiting() == 1 }, "sync request never queued")

	// No job is active, so the submit is accepted — and must not then fail
	// against the full sync queue.
	var info JobInfo
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", req, &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitFor(t, 5*time.Second, func() bool { return s.pool.Waiting() == 2 }, "job never queued for the slot")
	s.pool.release()
	done := pollJob(t, s, info.ID, "done", 10*time.Second)
	if done.Error != "" {
		t.Fatalf("job bounced: %q", done.Error)
	}
	if code := <-syncDone; code != http.StatusOK {
		t.Fatalf("queued sync request: status %d", code)
	}
}

func TestServerCloseCancelsJobs(t *testing.T) {
	s := New(Config{PoolSize: 1})
	upload(t, s)
	slowSnapshotPair(t, s, 15000)
	var info JobInfo
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", slowRequest(), &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollJob(t, s, info.ID, "running", 10*time.Second)
	s.Close()
	pollJob(t, s, info.ID, "cancelled", 5*time.Second)
	waitFor(t, 5*time.Second, func() bool { return s.pool.InFlight() == 0 },
		"slot not freed on close")
	// The pool rejects new work after Close — sync and async alike.
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close solve: status %d, want 503", code)
	}
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close job submit: status %d, want 503", code)
	}
}
