package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	dcs "github.com/dcslib/dcs"
)

// randomPair builds a contrast pair over n vertices: a noisy background that
// partly persists plus a planted rising clique, so every measure has
// something to find.
func randomPair(rng *rand.Rand, n int) (g1, g2 GraphJSON) {
	g1.N, g2.N = n, n
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		w := rng.Float64()
		g1.Edges = append(g1.Edges, EdgeJSON{u, v, w})
		if rng.Float64() < 0.7 {
			g2.Edges = append(g2.Edges, EdgeJSON{u, v, w * (0.5 + rng.Float64())})
		}
	}
	// Planted clique on the first 4 vertices, strong only in g2.
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g2.Edges = append(g2.Edges, EdgeJSON{u, v, 5 + rng.Float64()})
		}
	}
	return
}

// TestConcurrentLoad hammers a live server with mixed traffic — snapshot
// replacement, all four mining measures, the topics pipeline and health
// probes — over shared snapshots. Its real assertions are the -race detector
// plus every request completing with a 2xx.
func TestConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const n = 40
	s := New(Config{PoolSize: 4, Parallelism: 2})
	seed := rand.New(rand.NewSource(1))
	g1, g2 := randomPair(seed, n)
	s.Store().Put("base", mustBuild(t, &g1))
	s.Store().Put("hot", mustBuild(t, &g2))

	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	post := func(path string, body any) (int, []byte, error) {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}

	const (
		writers       = 2
		readers       = 6
		opsPerWorker  = 15
		measuresPerOp = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, (writers+readers+1)*opsPerWorker*measuresPerOp)

	// Writers keep replacing the "hot" snapshot (same vertex count, so
	// in-flight contrasts against it stay valid).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + id)))
			for i := 0; i < opsPerWorker; i++ {
				_, g := randomPair(rng, n)
				code, body, err := post("/v1/snapshots", SnapshotRequest{Name: "hot", GraphJSON: g})
				if err != nil {
					errs <- err
				} else if code != http.StatusOK {
					errs <- fmt.Errorf("writer %d: snapshot status %d: %s", id, code, body)
				}
			}
		}(w)
	}

	// Readers cycle through the four measures and the topics endpoint.
	measures := []string{"avgdeg", "affinity", "totalweight", "ratio"}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				m := measures[(id+i)%len(measures)]
				req := DCSRequest{Measure: m, G1: "base", G2: "hot", K: 1 + i%3}
				code, body, err := post("/v1/dcs", req)
				if err != nil {
					errs <- err
				} else if code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: dcs %s status %d: %s", id, m, code, body)
				}
				if i%5 == 0 {
					resp, err := client.Get(ts.URL + "/v1/topics?g1=base&g2=hot&k=3")
					if err != nil {
						errs <- err
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("reader %d: topics status %d", id, resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(r)
	}

	// A health prober runs alongside.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < opsPerWorker; i++ {
			resp, err := client.Get(ts.URL + "/healthz")
			if err != nil {
				errs <- err
				continue
			}
			var h HealthResponse
			if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
				errs <- err
			} else if h.Status != "ok" {
				errs <- fmt.Errorf("health status %q", h.Status)
			}
			resp.Body.Close()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The hot snapshot must have been replaced writers*opsPerWorker times.
	snap, ok := s.Store().Get("hot")
	if !ok {
		t.Fatal("hot snapshot vanished")
	}
	if want := writers*opsPerWorker + 1; snap.Version != want {
		t.Fatalf("hot version %d, want %d", snap.Version, want)
	}
}

func mustBuild(t *testing.T, g *GraphJSON) *dcs.Graph {
	t.Helper()
	built, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	return built
}
