package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	dcs "github.com/dcslib/dcs"
)

// This file is the out-of-core side of the snapshot store: a durable server
// (serve.Open) does not keep every snapshot's graph on the heap. Snapshots
// live on disk in the mmap-friendly v2 binary format and are opened lazily —
// mapped read-only on first use, served in place, and unmapped again when a
// configurable memory budget (Config.MemLimit, dcsd -memlimit) is exceeded.
// The memoryManager below is that budget: a byte-accounted LRU of open graph
// handles keyed by snapshot identity (name + version, the same identity the
// diff cache and the tombstone/ABA discipline use), with pin counts so that
// eviction can never unmap a graph a running solve or job still reads.
//
// Lifecycle of a handle:
//
//	register    the snapshot's graph file is durable; the id is servable
//	acquire     open (mmap) on demand, pin, bump LRU recency
//	release     unpin; a doomed handle closes at pins→0
//	evict       close the coldest unpinned handles until under budget
//	invalidate  Delete/replace: the id is gone — close now, or doom it
//	            until the last pin drains; it can never be reopened
//
// Opening runs outside the manager lock (one CRC + validation pass over the
// file can take a while on big graphs) with a per-handle opening flag, so
// concurrent acquires of the same snapshot share one open and acquires of
// other snapshots never stall behind it.

// snapID is a snapshot identity: the name plus its monotonic version. All
// handle bookkeeping is keyed by it, so a deleted-and-re-created name can
// never be served from a stale mapping (the version differs).
type snapID struct {
	name    string
	version int
}

// errSnapshotGone reports an acquire of an invalidated (deleted or replaced)
// snapshot version. Callers that resolved the snapshot just before can treat
// it like a concurrent delete: re-resolve or 404.
var errSnapshotGone = errors.New("serve: snapshot version no longer available")

// graphHandle is one registered snapshot graph file and, when open, its
// mapping. All fields are guarded by the owning manager's mutex.
type graphHandle struct {
	id   snapID
	path string

	open    *dcs.MappedGraph // non-nil while mapped/loaded
	bytes   int64            // open.Bytes() at open time
	pins    int              // live references; eviction skips pins > 0
	doomed  bool             // invalidated: close at pins→0, never reopen
	opening bool             // an acquire is opening the file right now
	opened  bool             // has been open before (re-opens count as remaps)
	elem    *list.Element    // position in the LRU while open
}

// memoryManager is the byte-accounted LRU over open snapshot graph handles.
type memoryManager struct {
	mu      sync.Mutex
	cond    *sync.Cond              // broadcast when an in-flight open finishes
	limit   int64                   // budget over open handle bytes; <= 0 means unlimited
	handles map[snapID]*graphHandle // guarded by mu
	lru     *list.List              // guarded by mu; open handles, front = most recently used

	openBytes   int64  // guarded by mu; sum of open handle bytes (mapped + shadow)
	mappedBytes int64  // guarded by mu; file-mapping portion of openBytes
	evictions   uint64 // guarded by mu
	remaps      uint64 // guarded by mu
}

func newMemoryManager(limit int64) *memoryManager {
	mm := &memoryManager{
		limit:   limit,
		handles: make(map[snapID]*graphHandle),
		lru:     list.New(),
	}
	mm.cond = sync.NewCond(&mm.mu)
	return mm
}

// register makes id servable from path. Registering an id twice is a no-op
// (recovery and a racing Put would be the only source, and they agree on the
// path: versions are minted once).
func (mm *memoryManager) register(id snapID, path string) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if _, ok := mm.handles[id]; !ok {
		mm.handles[id] = &graphHandle{id: id, path: path}
	}
}

// acquire returns id's graph, opening (mapping) the file if it is not
// resident, pinned against eviction until the returned release is called.
// The release func is idempotent-unsafe: call it exactly once.
func (mm *memoryManager) acquire(id snapID) (*dcs.Graph, func(), error) {
	mm.mu.Lock()
	for {
		h := mm.handles[id]
		if h == nil {
			mm.mu.Unlock()
			return nil, nil, errSnapshotGone
		}
		if h.open != nil {
			h.pins++
			mm.lru.MoveToFront(h.elem)
			mm.mu.Unlock()
			return h.open.Graph(), func() { mm.release(h) }, nil
		}
		if h.opening {
			// Another acquire is opening this file; share its result.
			mm.cond.Wait()
			continue
		}
		h.opening = true
		mm.mu.Unlock()

		m, err := dcs.OpenGraphMapped(h.path)

		mm.mu.Lock()
		h.opening = false
		mm.cond.Broadcast()
		if err != nil {
			mm.mu.Unlock()
			return nil, nil, fmt.Errorf("serve: open snapshot %q v%d: %w", id.name, id.version, err)
		}
		if mm.handles[id] != h || h.doomed {
			// Invalidated while we were opening: the mapping must not serve.
			mm.mu.Unlock()
			m.Close()
			return nil, nil, errSnapshotGone
		}
		if h.opened {
			mm.remaps++
		}
		h.opened = true
		h.open = m
		h.bytes = m.Bytes()
		mm.openBytes += h.bytes
		mm.mappedBytes += m.MappedBytes()
		h.elem = mm.lru.PushFront(h)
		h.pins++
		// The budget may now be exceeded; shed the coldest unpinned handles.
		// The handle just pinned can never be the victim.
		mm.evictLocked()
		mm.mu.Unlock()
		return m.Graph(), func() { mm.release(h) }, nil
	}
}

// release drops one pin. The last pin of a doomed handle closes it; an
// ordinary handle at pins 0 merely becomes evictable, and the budget is
// re-checked since eviction may have been waiting on this pin.
func (mm *memoryManager) release(h *graphHandle) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	h.pins--
	if h.pins == 0 {
		if h.doomed {
			mm.closeLocked(h)
		} else {
			mm.evictLocked()
		}
	}
}

// invalidate removes id from service: Delete committed, or a Put replaced
// the version. An unpinned handle closes immediately; a pinned one is doomed
// — the running solves holding pins keep their (immutable, still-mapped)
// graph, and the mapping closes when the last pin drains. Either way no new
// acquire can ever see it again.
func (mm *memoryManager) invalidate(id snapID) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	h := mm.handles[id]
	if h == nil {
		return
	}
	delete(mm.handles, id)
	h.doomed = true // an in-flight open observes this and backs out
	if h.open != nil && h.pins == 0 {
		mm.closeLocked(h)
	}
}

// closeAll dooms every handle (Server.Close): unpinned ones close now,
// pinned ones when their jobs finish.
func (mm *memoryManager) closeAll() {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	for id, h := range mm.handles {
		delete(mm.handles, id)
		h.doomed = true
		if h.open != nil && h.pins == 0 {
			mm.closeLocked(h)
		}
	}
}

// evictLocked closes cold handles, least recently used first, until open
// bytes fit the budget. Pinned handles are skipped — eviction never unmaps
// under a running peel — so a budget smaller than the pinned working set is
// simply exceeded until pins drain.
func (mm *memoryManager) evictLocked() {
	if mm.limit <= 0 {
		return
	}
	for el := mm.lru.Back(); el != nil && mm.openBytes > mm.limit; {
		prev := el.Prev()
		h := el.Value.(*graphHandle)
		if h.pins == 0 {
			mm.closeLocked(h)
			mm.evictions++
		}
		el = prev
	}
}

// closeLocked unmaps h and removes it from the LRU. Caller holds mm.mu and
// has ensured pins == 0.
func (mm *memoryManager) closeLocked(h *graphHandle) {
	if h.open == nil {
		return
	}
	mm.openBytes -= h.bytes
	mm.mappedBytes -= h.open.MappedBytes()
	mm.lru.Remove(h.elem)
	h.elem = nil
	h.open.Close()
	h.open = nil
	h.bytes = 0
}

// stats reports the manager's counters for /healthz. Heap figures are added
// by the server (they come from the runtime, not from here).
func (mm *memoryManager) stats() MemoryStats {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	st := MemoryStats{
		Enabled:       true,
		LimitBytes:    max(mm.limit, 0),
		MappedBytes:   mm.mappedBytes,
		ShadowBytes:   mm.openBytes - mm.mappedBytes,
		LazySnapshots: len(mm.handles),
		OpenSnapshots: mm.lru.Len(),
		Evictions:     mm.evictions,
		Remaps:        mm.remaps,
	}
	for el := mm.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*graphHandle).pins > 0 {
			st.PinnedSnapshots++
		}
	}
	return st
}
