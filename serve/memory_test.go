package serve

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"testing"

	dcs "github.com/dcslib/dcs"
)

// memTestGraph builds a deterministic random graph big enough that its v2
// file spans real section pages (a few thousand edges).
func memTestGraph(seed int64, n int) *dcs.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := dcs.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.1 {
				b.AddEdge(u, v, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

// dcsAnswer mines avgdeg over a named pair and returns the raw response
// JSON with the timing stripped, so two servers' answers compare bitwise.
func dcsAnswer(t *testing.T, s *Server, g1, g2 string) string {
	t.Helper()
	var resp DCSResponse
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs",
		DCSRequest{Measure: "avgdeg", G1: g1, G2: g2}, &resp); code != http.StatusOK {
		t.Fatalf("dcs %s vs %s: status %d", g1, g2, code)
	}
	resp.ElapsedMS = 0
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMemoryBudgetEvictsAndServesCorrectly is the serve-layer acceptance
// test of the out-of-core store: a durable server whose snapshot set far
// exceeds its memory budget must answer every query bitwise-identically to
// an unconstrained in-memory twin, with evictions actually observed.
func TestMemoryBudgetEvictsAndServesCorrectly(t *testing.T) {
	// ~16 KiB per open snapshot file; a 24 KiB budget fits one at a time.
	s, err := Open(Config{CheckpointInterval: -1, MemLimit: 24 << 10}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	twin := New(Config{})
	defer twin.Close()

	names := []string{"a", "b", "c", "d"}
	for i, name := range names {
		g := memTestGraph(int64(i+1), 80)
		if _, err := s.Store().Put(name, g); err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		twin.Store().Put(name, g)
	}
	for round := 0; round < 2; round++ {
		for i, g1 := range names {
			g2 := names[(i+1)%len(names)]
			if got, want := dcsAnswer(t, s, g1, g2), dcsAnswer(t, twin, g1, g2); got != want {
				t.Fatalf("round %d %s vs %s: budgeted answer diverged\n got %s\nwant %s", round, g1, g2, got, want)
			}
		}
	}
	st := s.MemoryStats()
	if !st.Enabled || st.Evictions == 0 || st.Remaps == 0 {
		t.Fatalf("budget never exercised: %+v", st)
	}
	if st.PinnedSnapshots != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
	if tw := twin.MemoryStats(); tw.Enabled || tw.Evictions != 0 {
		t.Fatalf("in-memory twin grew a budget: %+v", tw)
	}
}

// TestMemoryPinBlocksEviction holds a pin on one snapshot while churning
// enough others through a tiny budget to force evictions: the pinned graph
// must stay readable throughout (eviction never unmaps under a reader).
func TestMemoryPinBlocksEviction(t *testing.T) {
	s, err := Open(Config{CheckpointInterval: -1, MemLimit: 1}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"pinned", "x", "y"} {
		if _, err := s.Store().Put(name, memTestGraph(7, 60)); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := s.Store().Get("pinned")
	g, release, err := snap.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	want := g.TotalWeight()
	// Churn the others: with a 1-byte budget each release evicts, but the
	// held pin must survive every sweep.
	for i := 0; i < 3; i++ {
		for _, name := range []string{"x", "y"} {
			other, _ := s.Store().Get(name)
			og, orel, err := other.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			_ = og.TotalWeight()
			orel()
		}
		if got := g.TotalWeight(); got != want {
			t.Fatalf("pinned graph changed under churn: %v != %v", got, want)
		}
	}
	st := s.MemoryStats()
	if st.Evictions == 0 || st.PinnedSnapshots != 1 || st.OpenSnapshots < 1 {
		t.Fatalf("stats %+v: want evictions with exactly the pinned snapshot surviving", st)
	}
	release()
	if st := s.MemoryStats(); st.PinnedSnapshots != 0 || st.OpenSnapshots != 0 {
		t.Fatalf("release did not drain under a 1-byte budget: %+v", st)
	}
}

// TestMemoryDeleteInvalidatesHandle checks the tombstone/ABA discipline on
// mappings: deleting a snapshot invalidates its handle by (name, version)
// identity, so a stale Snapshot pointer errors instead of serving, and a
// re-created name is served from its own fresh version — never the stale
// mapping.
func TestMemoryDeleteInvalidatesHandle(t *testing.T) {
	s, err := Open(Config{CheckpointInterval: -1}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Store().Put("g", testGraph(1, 2))
	stale, _ := s.Store().Get("g")
	if _, release, err := stale.Acquire(); err != nil { // map it once
		t.Fatal(err)
	} else {
		release()
	}
	if ok, err := s.Store().Delete("g"); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, _, err := stale.Acquire(); !errors.Is(err, errSnapshotGone) {
		t.Fatalf("stale acquire after delete: %v, want errSnapshotGone", err)
	}
	if st := s.MemoryStats(); st.OpenSnapshots != 0 || st.LazySnapshots != 0 {
		t.Fatalf("delete left handles behind: %+v", st)
	}

	s.Store().Put("g", testGraph(9)) // re-created: version 2, different graph
	fresh, _ := s.Store().Get("g")
	if fresh.Version != 2 {
		t.Fatalf("re-created version %d, want 2", fresh.Version)
	}
	if g := snapGraph(t, fresh); g.Weight(0, 1) != 9 {
		t.Fatalf("re-created name served stale data: weight %v", g.Weight(0, 1))
	}
	if _, _, err := stale.Acquire(); !errors.Is(err, errSnapshotGone) {
		t.Fatal("stale version 1 handle resurrected by the re-creation")
	}
}

// TestMemoryDeleteWhilePinned: a delete while a solve holds the mapping
// dooms the handle instead of unmapping it — the reader finishes on valid
// memory and the close happens at the final release.
func TestMemoryDeleteWhilePinned(t *testing.T) {
	s, err := Open(Config{CheckpointInterval: -1}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Store().Put("g", memTestGraph(3, 50))
	snap, _ := s.Store().Get("g")
	g, release, err := snap.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	want := g.TotalWeight()
	if ok, _ := s.Store().Delete("g"); !ok {
		t.Fatal("delete failed")
	}
	// Doomed but pinned: still open, still readable.
	if st := s.MemoryStats(); st.OpenSnapshots != 1 || st.PinnedSnapshots != 1 {
		t.Fatalf("doomed handle closed under its pin: %+v", st)
	}
	if got := g.TotalWeight(); got != want {
		t.Fatalf("graph changed after delete-while-pinned: %v != %v", got, want)
	}
	release()
	if st := s.MemoryStats(); st.OpenSnapshots != 0 {
		t.Fatalf("last release did not close the doomed handle: %+v", st)
	}
}

// TestMemoryReplaceInvalidatesOldVersion: Put over an existing name frees
// the replaced version's mapping (it can never be resolved again).
func TestMemoryReplaceInvalidatesOldVersion(t *testing.T) {
	s, err := Open(Config{CheckpointInterval: -1}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Store().Put("g", testGraph(1))
	v1, _ := s.Store().Get("g")
	if _, release, err := v1.Acquire(); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
	s.Store().Put("g", testGraph(2))
	if st := s.MemoryStats(); st.OpenSnapshots != 0 || st.LazySnapshots != 1 {
		t.Fatalf("replace left the old version open: %+v", st)
	}
	if _, _, err := v1.Acquire(); !errors.Is(err, errSnapshotGone) {
		t.Fatalf("replaced version still acquirable: %v", err)
	}
}

// TestMemoryLazyRestartServesFromDisk: after a restart the snapshots are
// registered lazily (no graph loads at boot) and first use maps them.
func TestMemoryLazyRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := memTestGraph(11, 70)
	s.Store().Put("g1", g)
	s.Store().Put("g2", memTestGraph(12, 70))
	want := dcsAnswer(t, s, "g1", "g2")
	s.Close()

	s2 := openTest(t, dir)
	defer s2.Close()
	if st := s2.MemoryStats(); st.OpenSnapshots != 0 || st.LazySnapshots != 2 {
		t.Fatalf("boot should register lazily, not open: %+v", st)
	}
	snap, ok := s2.Store().Get("g1")
	if !ok || snap.Info().M != g.M() || snap.Info().TotalWeight != g.TotalWeight() {
		t.Fatalf("lazy Info wrong: %+v vs m=%d tw=%v", snap.Info(), g.M(), g.TotalWeight())
	}
	if got := dcsAnswer(t, s2, "g1", "g2"); got != want {
		t.Fatalf("restarted answer diverged:\n got %s\nwant %s", got, want)
	}
	if st := s2.MemoryStats(); st.OpenSnapshots == 0 || st.MappedBytes == 0 {
		t.Fatalf("first use should have mapped the files: %+v", st)
	}
}
