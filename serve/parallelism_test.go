package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestParallelismClampAndEcho covers the per-request parallelism contract:
// the effective degree is the request's value clamped to the server cap
// (never rejected for being too large), 0/absent falls back to the server
// default, and the response always echoes the degree actually used so a
// client can detect the clamp.
func TestParallelismClampAndEcho(t *testing.T) {
	s := New(Config{Parallelism: 2, MaxParallelism: 3})
	defer s.Close()
	upload(t, s)

	cases := []struct {
		name      string
		requested int
		want      int
	}{
		{"absent_uses_server_default", 0, 2},
		{"explicit_within_cap", 1, 1},
		{"at_cap", 3, 3},
		{"above_cap_clamped", 64, 3},
	}
	var baseline DCSResponse
	for i, tc := range cases {
		req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new", Parallelism: tc.requested}
		var resp DCSResponse
		if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, code)
		}
		if resp.Parallelism != tc.want {
			t.Fatalf("%s: echoed parallelism %d, want %d", tc.name, resp.Parallelism, tc.want)
		}
		// Every degree must solve to the same answer (Fig. 1 DCS = {0, 2, 3}).
		if len(resp.Results) != 1 {
			t.Fatalf("%s: %d results, want 1", tc.name, len(resp.Results))
		}
		if i == 0 {
			baseline = resp
		} else if len(resp.Results[0].S) != len(baseline.Results[0].S) ||
			resp.Results[0].Density != baseline.Results[0].Density {
			t.Fatalf("%s: result diverged across degrees: %+v vs %+v",
				tc.name, resp.Results[0], baseline.Results[0])
		}
	}
}

// TestParallelismNegativeRejected: negative degrees are a client error, not
// something to clamp silently.
func TestParallelismNegativeRejected(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	upload(t, s)

	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new", Parallelism: -1}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, nil); code != http.StatusBadRequest {
		t.Fatalf("negative parallelism: status %d, want 400", code)
	}
}

// TestParallelismDefaultsFloorAtOne: a zero-value Config (Parallelism 0)
// still echoes a real degree — the floor is 1, never 0.
func TestParallelismDefaultsFloorAtOne(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	upload(t, s)

	var resp DCSResponse
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("solve: status %d", code)
	}
	if resp.Parallelism < 1 {
		t.Fatalf("echoed parallelism %d, want >= 1", resp.Parallelism)
	}
}

// TestParallelismJobsPath: the async job API runs through the same solve()
// and must clamp and echo identically in the stored result.
func TestParallelismJobsPath(t *testing.T) {
	s := New(Config{MaxParallelism: 2})
	defer s.Close()
	upload(t, s)

	var info JobInfo
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new", Parallelism: 16}
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", req, &info); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := pollJob(t, s, info.ID, "done", 10*time.Second)
	if done.Result == nil {
		t.Fatalf("done job missing result: %+v", done)
	}
	if done.Result.Parallelism != 2 {
		t.Fatalf("job result parallelism %d, want clamped 2", done.Result.Parallelism)
	}

	// Negative degree is rejected at submit time, before a job is created.
	bad := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new", Parallelism: -3}
	if code := doJob(t, s, http.MethodPost, "/v1/jobs", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("negative parallelism job: status %d, want 400", code)
	}
}
