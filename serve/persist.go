package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	dcs "github.com/dcslib/dcs"
	"github.com/dcslib/dcs/evolve"
)

// This file is the durability layer behind serve.Open: a dcsd with a data
// directory restarts warm instead of forgetting every snapshot, version
// counter and streaming watch it held in memory.
//
// Layout under the data directory:
//
//	snapshots/<key>.json          one manifest per snapshot name: name,
//	                              version, UpdatedAt, graph file — or a
//	                              tombstone (deleted, version retained)
//	snapshots/<key>.v<V>.dcsg     the version-V graph, binary CSR codec
//	watches/<key>.json            one manifest per watch: config, step,
//	                              counters, report ring, graph files
//	watches/<key>.v<S>.expect.dcsg  checkpointed EWMA expectation
//	watches/<key>.v<S>.last.dcsg    checkpointed delta base (last observation)
//
// <key> is url.PathEscape of the name: injective, never contains a path
// separator, and only ever embedded inside longer file names so "." and
// ".." cannot arise.
//
// Crash safety: every file is written to a temp name, fsynced and renamed
// into place; a snapshot's graph file commits before the manifest that
// references it, and old files are deleted only after the new manifest is
// durable. A kill -9 at any point therefore leaves either the old or the
// new fully-committed state: recovery reads the manifests, verifies each
// graph's checksum (binary codec), seeds the store's monotonic version
// counters (tombstones included — the diff-cache ABA protection survives
// restart), and removes whatever orphaned temp/graph files the crash left.
//
// Snapshots are mirrored write-through (each Store.Put/Delete lands on disk
// before the call returns). Watch state is checkpointed: immediately on
// registration and deletion, and periodically (Config.CheckpointInterval)
// plus on Flush/Close for observation progress — an fsync per stream tick
// would gate mining throughput on the disk.

type snapManifest struct {
	Name      string    `json:"name"`
	Version   int       `json:"version"`
	UpdatedAt time.Time `json:"updated_at"`
	// File is the graph file's base name within snapshots/.
	File string `json:"file,omitempty"`
	// Meta caches the graph's headline numbers so boot can register the
	// snapshot lazily — checksum-verify the file, serve Info from here, and
	// only map the graph when a request first touches it. Absent on
	// manifests written before the out-of-core store; those recover eagerly.
	Meta *snapMeta `json:"meta,omitempty"`
	// Deleted marks a tombstone: the name is gone but its version counter
	// must survive restarts.
	Deleted bool `json:"deleted,omitempty"`
}

// snapMeta is the snapshot metadata mirrored into the manifest.
type snapMeta struct {
	N           int     `json:"n"`
	M           int     `json:"m"`
	TotalWeight float64 `json:"total_weight"`
}

type watchManifest struct {
	Name           string        `json:"name"`
	N              int           `json:"n"`
	Lambda         float64       `json:"lambda"`
	Measure        string        `json:"measure"`
	MinDensity     float64       `json:"min_density"`
	SolveTimeoutMS float64       `json:"solve_timeout_ms,omitempty"`
	ReportCap      int           `json:"report_cap"`
	ResyncEvery    int           `json:"resync_every,omitempty"`
	CreatedAt      time.Time     `json:"created_at"`
	Step           int           `json:"step"`
	Anomalies      int           `json:"anomalies"`
	LastSeen       *time.Time    `json:"last_seen,omitempty"`
	Reports        []WatchReport `json:"reports,omitempty"`
	// Seq is the checkpoint sequence number embedded in the graph file
	// names, so a new checkpoint never overwrites the files the previous
	// manifest still references.
	Seq        int    `json:"seq"`
	ExpectFile string `json:"expect_file"`
	LastFile   string `json:"last_file"`
}

// persister owns the data directory. All disk mutations serialize on mu —
// correctness of the commit ordering above depends on it; the stat counters
// live under their own lock so /healthz never waits on disk I/O.
type persister struct {
	snapDir  string
	watchDir string

	mu sync.Mutex
	// lastSaved is the newest version durably recorded per snapshot name
	// (tombstones included). Writes carrying an older version are stale
	// deliveries from concurrent Puts and are discarded. guarded by mu.
	lastSaved map[string]int
	// dirty holds watches with observations newer than their last
	// checkpoint, under its own small lock: markDirty sits on the observe
	// hot path and must never wait behind a checkpoint's fsyncs on mu.
	// Lock order is mu → dirtyMu → the registry's lock (via lookup).
	dirtyMu sync.Mutex
	dirty   map[string]*watch // guarded by dirtyMu
	// lookup resolves a name to the registry's CURRENT watch. Checked
	// before any checkpoint write, dirty-mark or file removal, so neither a
	// flush of a deleted watch nor the deletion of a name that a new
	// same-named watch has since claimed can touch the current owner's
	// state.
	lookup func(name string) (*watch, bool)

	statMu sync.Mutex
	stats  PersistStats // guarded by statMu
}

func openPersister(dir string) (*persister, error) {
	p := &persister{
		snapDir:   filepath.Join(dir, "snapshots"),
		watchDir:  filepath.Join(dir, "watches"),
		lastSaved: make(map[string]int),
		dirty:     make(map[string]*watch),
	}
	for _, d := range []string{p.snapDir, p.watchDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: data directory: %w", err)
		}
	}
	p.stats.Enabled = true
	return p, nil
}

// fsKey maps a snapshot or watch name to a filename-safe, injective key.
func fsKey(name string) string { return url.PathEscape(name) }

// writeAtomic writes content to path via temp file + fsync + rename, the
// all-or-nothing primitive everything here builds on. Callers hold p.mu.
func writeAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename itself lives in the directory: without fsyncing it, a
	// power loss could forget the entry even though the file's own Sync
	// succeeded, and the "durable once the call returns" promise would only
	// cover process crashes.
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making renames within it power-loss durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func writeJSONFile(path string, v any) error {
	return writeAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(v)
	})
}

// countWrite bumps the counter kind selects (WriteErrors instead when err is
// non-nil). kind runs under statMu, so callers never reach into stats
// without the lock.
func (p *persister) countWrite(kind func(*PersistStats) *int, err error) {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	if err != nil {
		p.stats.WriteErrors++
		return
	}
	*kind(&p.stats)++
}

func snapshotWrites(s *PersistStats) *int   { return &s.SnapshotWrites }
func watchCheckpoints(s *PersistStats) *int { return &s.WatchCheckpoints }

// saveSnapshot implements persistHook: graph file first, then the manifest
// referencing it, then removal of the replaced graph file. The graph is
// written in the v2 (mmap-friendly, uncompressed) binary layout so the store
// can demote the snapshot and serve it from the mapping; the committed
// file's path is returned for that registration ("" on a stale delivery).
// Removing the replaced version's file is safe even while a solve still
// reads its mapping — an unlinked mapping survives until unmapped.
func (p *persister) saveSnapshot(s *Snapshot, g *dcs.Graph) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastSaved[s.Name] >= s.Version {
		return "", nil // stale delivery; a newer version is already durable
	}
	key := fsKey(s.Name)
	gfile := key + ".v" + strconv.Itoa(s.Version) + ".dcsg"
	gpath := filepath.Join(p.snapDir, gfile)
	err := writeAtomic(gpath, func(w io.Writer) error {
		return dcs.WriteGraphBinaryV2(w, g, false)
	})
	if err == nil {
		old := p.readManifest(key)
		err = writeJSONFile(filepath.Join(p.snapDir, key+".json"), snapManifest{
			Name: s.Name, Version: s.Version, UpdatedAt: s.UpdatedAt, File: gfile,
			Meta: &snapMeta{N: g.N(), M: g.M(), TotalWeight: g.TotalWeight()},
		})
		if err == nil {
			p.lastSaved[s.Name] = s.Version
			if old != nil && old.File != "" && old.File != gfile {
				os.Remove(filepath.Join(p.snapDir, old.File))
			}
		}
	}
	p.countWrite(snapshotWrites, err)
	if err != nil {
		return "", err
	}
	return gpath, nil
}

// deleteSnapshot implements persistHook: replace the manifest with a
// tombstone retaining the version counter, then drop the graph file.
func (p *persister) deleteSnapshot(name string, lastVersion int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Stale-delivery guard, the mirror of saveSnapshot's: hooks run outside
	// the store lock, so a delete can reach the disk after the save of a
	// later re-creation. lastVersion is the counter this delete observed at
	// its commit; if something newer is already durable, tombstoning it
	// would destroy a live snapshot and regress the version counter.
	if p.lastSaved[name] > lastVersion {
		return nil
	}
	key := fsKey(name)
	old := p.readManifest(key)
	err := writeJSONFile(filepath.Join(p.snapDir, key+".json"), snapManifest{
		Name: name, Version: lastVersion, UpdatedAt: time.Now(), Deleted: true,
	})
	if err == nil {
		if p.lastSaved[name] < lastVersion {
			p.lastSaved[name] = lastVersion
		}
		if old != nil && old.File != "" {
			os.Remove(filepath.Join(p.snapDir, old.File))
		}
	}
	p.countWrite(snapshotWrites, err)
	return err
}

// readManifest loads a snapshot manifest by key, nil when absent/corrupt.
// Callers hold p.mu.
func (p *persister) readManifest(key string) *snapManifest {
	data, err := os.ReadFile(filepath.Join(p.snapDir, key+".json"))
	if err != nil {
		return nil
	}
	var m snapManifest
	if json.Unmarshal(data, &m) != nil {
		return nil
	}
	return &m
}

// recoverSnapshots loads every committed snapshot into the store, seeds
// version counters from manifests and tombstones, and sweeps files no
// manifest references (the debris of a crash mid-commit).
func (p *persister) recoverSnapshots(store *Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	entries, err := os.ReadDir(p.snapDir)
	if err != nil {
		p.noteRestoreError()
		return
	}
	keep := map[string]bool{}
	var keepPrefixes []string
	var manifests []snapManifest
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(p.snapDir, name))
		if err != nil {
			p.noteRestoreError()
			keep[name] = true
			keepPrefixes = append(keepPrefixes, strings.TrimSuffix(name, ".json")+".v")
			continue
		}
		var m snapManifest
		if err := json.Unmarshal(data, &m); err != nil || m.Name == "" {
			// Unreadable manifest: count it, keep the file for diagnosis —
			// and spare every file of its key (<key>.v*), since we can no
			// longer tell which of them the manifest references. Deleting
			// them would turn a corrupt ~200-byte JSON into permanent loss
			// of an intact, checksummed graph.
			p.noteRestoreError()
			keep[name] = true
			keepPrefixes = append(keepPrefixes, strings.TrimSuffix(name, ".json")+".v")
			continue
		}
		keep[name] = true
		if !m.Deleted && m.File != "" {
			keep[m.File] = true
		}
		manifests = append(manifests, m)
	}
	for _, m := range manifests {
		if p.lastSaved[m.Name] < m.Version {
			p.lastSaved[m.Name] = m.Version
		}
		store.SeedVersion(m.Name, m.Version)
		if m.Deleted {
			continue
		}
		gpath := filepath.Join(p.snapDir, m.File)
		if m.Meta != nil && store.mem != nil {
			// Lazy restore: one streaming checksum pass over the file, no
			// graph build — boot stays O(metadata) no matter how much graph
			// data the directory holds. (Structural invariants are verified
			// when the file is first mapped; a file that passes the checksum
			// but fails them errors at first use, not at boot.)
			if err := dcs.VerifyGraphFile(gpath); err != nil {
				p.noteRestoreError()
				continue
			}
			store.mem.register(snapID{m.Name, m.Version}, gpath)
			store.Restore(newLazySnapshot(m.Name, m.Version, m.UpdatedAt,
				m.Meta.N, m.Meta.M, m.Meta.TotalWeight, store.mem))
			p.statMu.Lock()
			p.stats.SnapshotsRestored++
			p.statMu.Unlock()
			continue
		}
		// Pre-metadata manifest: recover eagerly, as before the out-of-core
		// store. The snapshot stays resident until its next Put.
		g, err := readGraphFileBinary(gpath)
		if err != nil {
			// The commit ordering makes this unreachable for crashes; it
			// means on-disk corruption after the fact. Boot degraded rather
			// than not at all.
			p.noteRestoreError()
			continue
		}
		store.Restore(newSnapshot(m.Name, m.Version, g, m.UpdatedAt))
		p.statMu.Lock()
		p.stats.SnapshotsRestored++
		p.statMu.Unlock()
	}
	for _, e := range entries {
		if !keep[e.Name()] && !hasAnyPrefix(e.Name(), keepPrefixes) {
			os.Remove(filepath.Join(p.snapDir, e.Name()))
		}
	}
}

// hasAnyPrefix reports whether name starts with any of the prefixes.
func hasAnyPrefix(name string, prefixes []string) bool {
	for _, pre := range prefixes {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}

func readGraphFileBinary(path string) (*dcs.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dcs.ReadGraphBinary(f)
}

func (p *persister) noteRestoreError() {
	p.statMu.Lock()
	p.stats.RestoreErrors++
	p.statMu.Unlock()
}

// markDirty queues w for the next periodic checkpoint — unless w has been
// deleted or replaced, in which case a stale in-flight observe must not
// clobber the current same-named watch's pending mark. Touches only the
// dirty lock, never the disk mutex: observes must not stall behind a
// checkpoint in progress.
func (p *persister) markDirty(w *watch) {
	p.dirtyMu.Lock()
	defer p.dirtyMu.Unlock()
	if p.lookup != nil {
		if cur, ok := p.lookup(w.name); !ok || cur != w {
			return
		}
	}
	p.dirty[w.name] = w
}

// clearDirty removes w's mark if (and only if) it is w's own.
func (p *persister) clearDirty(w *watch) {
	p.dirtyMu.Lock()
	if p.dirty[w.name] == w {
		delete(p.dirty, w.name)
	}
	p.dirtyMu.Unlock()
}

// checkpointWatch durably records w's current state. Graph files commit
// before the manifest referencing them; the previous checkpoint's files are
// removed only afterwards, so a crash leaves one complete checkpoint.
func (p *persister) checkpointWatch(w *watch) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Clear the dirty mark only if it is OUR mark: after a delete +
	// re-register under the same name, a flush of the stale pointer must
	// not absorb the live watch's pending checkpoint. An observation that
	// lands after this clear re-marks and is either captured below anyway
	// or re-checkpointed next flush — never lost.
	p.clearDirty(w)
	if p.lookup != nil {
		if cur, ok := p.lookup(w.name); !ok || cur != w {
			return nil // deleted (or replaced) since it was queued
		}
	}
	man, expect, last := w.checkpointState()
	key := fsKey(w.name)
	old := p.readWatchManifest(key)
	man.Seq = 1
	if old != nil {
		man.Seq = old.Seq + 1
	}
	seq := strconv.Itoa(man.Seq)
	man.ExpectFile = key + ".v" + seq + ".expect.dcsg"
	man.LastFile = key + ".v" + seq + ".last.dcsg"
	err := writeAtomic(filepath.Join(p.watchDir, man.ExpectFile), func(wr io.Writer) error {
		return dcs.WriteGraphBinary(wr, expect)
	})
	if err == nil {
		err = writeAtomic(filepath.Join(p.watchDir, man.LastFile), func(wr io.Writer) error {
			return dcs.WriteGraphBinary(wr, last)
		})
	}
	if err == nil {
		err = writeJSONFile(filepath.Join(p.watchDir, key+".json"), man)
	}
	if err == nil && old != nil {
		for _, f := range []string{old.ExpectFile, old.LastFile} {
			if f != "" && f != man.ExpectFile && f != man.LastFile {
				os.Remove(filepath.Join(p.watchDir, f))
			}
		}
	}
	p.countWrite(watchCheckpoints, err)
	return err
}

// deleteWatch removes the name's checkpoint files. The caller must already
// have removed its watch from the registry: the identity checks under mu
// then guarantee no flush re-creates the files. If a NEW watch has since
// claimed the name (delete + immediate re-register), the files on disk are
// the new owner's durable state and are left alone.
func (p *persister) deleteWatch(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lookup != nil {
		if _, ok := p.lookup(name); ok {
			return // a live re-registration owns this name's files now
		}
	}
	p.dirtyMu.Lock()
	delete(p.dirty, name)
	p.dirtyMu.Unlock()
	key := fsKey(name)
	if old := p.readWatchManifest(key); old != nil {
		for _, f := range []string{old.ExpectFile, old.LastFile} {
			if f != "" {
				os.Remove(filepath.Join(p.watchDir, f))
			}
		}
	}
	os.Remove(filepath.Join(p.watchDir, key+".json"))
}

func (p *persister) readWatchManifest(key string) *watchManifest {
	data, err := os.ReadFile(filepath.Join(p.watchDir, key+".json"))
	if err != nil {
		return nil
	}
	var m watchManifest
	if json.Unmarshal(data, &m) != nil {
		return nil
	}
	return &m
}

// flush checkpoints every watch observed since its last checkpoint.
func (p *persister) flush() {
	p.dirtyMu.Lock()
	ws := make([]*watch, 0, len(p.dirty))
	for _, w := range p.dirty {
		ws = append(ws, w)
	}
	p.dirtyMu.Unlock()
	for _, w := range ws {
		p.checkpointWatch(w) //nolint:errcheck // failures are counted in stats
	}
}

// recoverWatches rebuilds every checkpointed watch: the EWMA expectation
// and step resume via evolve.Restore, the delta base and report ring come
// back verbatim. opt is the server's solver options (not persisted — they
// are operator configuration).
func (p *persister) recoverWatches(opt dcs.Options) []*watch {
	p.mu.Lock()
	defer p.mu.Unlock()
	entries, err := os.ReadDir(p.watchDir)
	if err != nil {
		p.noteRestoreError()
		return nil
	}
	keep := map[string]bool{}
	var keepPrefixes []string
	var out []*watch
	for _, e := range entries {
		fname := e.Name()
		if filepath.Ext(fname) != ".json" {
			continue
		}
		keep[fname] = true
		data, err := os.ReadFile(filepath.Join(p.watchDir, fname))
		if err != nil {
			p.noteRestoreError()
			keepPrefixes = append(keepPrefixes, strings.TrimSuffix(fname, ".json")+".v")
			continue
		}
		var m watchManifest
		if err := json.Unmarshal(data, &m); err != nil || m.Name == "" || m.N < 0 {
			// Unreadable manifest: as in recoverSnapshots, spare the key's
			// checkpoint files instead of sweeping payloads we can no
			// longer attribute.
			p.noteRestoreError()
			keepPrefixes = append(keepPrefixes, strings.TrimSuffix(fname, ".json")+".v")
			continue
		}
		keep[m.ExpectFile] = true
		keep[m.LastFile] = true
		w, err := p.restoreWatch(&m, opt)
		if err != nil {
			p.noteRestoreError()
			continue
		}
		out = append(out, w)
		p.statMu.Lock()
		p.stats.WatchesRestored++
		p.statMu.Unlock()
	}
	for _, e := range entries {
		if !keep[e.Name()] && !hasAnyPrefix(e.Name(), keepPrefixes) {
			os.Remove(filepath.Join(p.watchDir, e.Name()))
		}
	}
	return out
}

func (p *persister) restoreWatch(m *watchManifest, opt dcs.Options) (*watch, error) {
	expect, err := readGraphFileBinary(filepath.Join(p.watchDir, m.ExpectFile))
	if err != nil {
		return nil, err
	}
	last, err := readGraphFileBinary(filepath.Join(p.watchDir, m.LastFile))
	if err != nil {
		return nil, err
	}
	resync := m.ResyncEvery
	if resync < 0 {
		resync = 0 // tolerate a hand-edited manifest; fall back to default
	}
	tracker, err := evolve.Restore(m.N, evolve.Config{
		Lambda:      m.Lambda,
		MinDensity:  m.MinDensity,
		GA:          m.Measure == "affinity",
		Opt:         opt,
		ResyncEvery: resync,
	}, expect, last, m.Step)
	if err != nil {
		return nil, err
	}
	ringCap := m.ReportCap
	if ringCap < 1 {
		ringCap = 1
	}
	reports := m.Reports
	if len(reports) > ringCap {
		reports = reports[len(reports)-ringCap:]
	}
	if resync == 0 {
		resync = evolve.DefaultResyncEvery // echo the applied default in infos
	}
	w := &watch{
		name:         m.Name,
		n:            m.N,
		lambda:       m.Lambda,
		measure:      m.Measure,
		minDensity:   m.MinDensity,
		solveTimeout: time.Duration(m.SolveTimeoutMS * float64(time.Millisecond)),
		ringCap:      ringCap,
		resync:       resync,
		created:      m.CreatedAt,
		tracker:      tracker,
		step:         m.Step,
		reports:      append([]WatchReport(nil), reports...),
		anomalies:    m.Anomalies,
	}
	if m.LastSeen != nil {
		w.lastSeen = *m.LastSeen
	}
	return w, nil
}

// statsSnapshot returns the current counters for /healthz.
func (p *persister) statsSnapshot() PersistStats {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	return p.stats
}
