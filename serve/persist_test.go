package serve

import (
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dcs "github.com/dcslib/dcs"
)

// openTest opens a persistent server over dir with the periodic checkpoint
// loop effectively off (tests flush explicitly, so timing never matters).
func openTest(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := Open(Config{CheckpointInterval: -1}, dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func testGraph(weights ...float64) *dcs.Graph {
	b := dcs.NewBuilder(len(weights) + 1)
	for i, w := range weights {
		b.AddEdge(i, i+1, w)
	}
	return b.Build()
}

// snapGraph acquires a snapshot's graph for assertions. The pin is released
// at test end — plenty, since tests never run a memory budget small enough
// to need the slot back.
func snapGraph(t *testing.T, s *Snapshot) *dcs.Graph {
	t.Helper()
	g, release, err := s.Acquire()
	if err != nil {
		t.Fatalf("Acquire(%s v%d): %v", s.Name, s.Version, err)
	}
	t.Cleanup(release)
	return g
}

func TestPersistSnapshotSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Store().Put("alpha", testGraph(1.5, -2.25, 1e-300))
	s.Store().Put("beta", testGraph(7))
	s.Store().Put("beta", testGraph(8, 9)) // replace: beta is version 2
	// No Close, no Flush: snapshots are write-through, so simply dropping
	// the process (kill -9) after Put returns must lose nothing.

	s2 := openTest(t, dir)
	defer s2.Close()
	st := s2.PersistStats()
	if !st.Enabled || st.SnapshotsRestored != 2 || st.RestoreErrors != 0 {
		t.Fatalf("restore stats %+v", st)
	}
	a, ok := s2.Store().Get("alpha")
	if !ok || a.Version != 1 || snapGraph(t, a).Weight(2, 3) != 1e-300 {
		t.Fatalf("alpha restored wrong: %+v", a)
	}
	b, ok := s2.Store().Get("beta")
	if !ok || b.Version != 2 || snapGraph(t, b).N() != 3 || snapGraph(t, b).Weight(1, 2) != 9 {
		t.Fatalf("beta restored wrong: %+v", b)
	}
	// Further puts continue the version sequence.
	if info, _ := s2.Store().Put("beta", testGraph(1)); info.Version != 3 {
		t.Fatalf("post-restart put: version %d, want 3", info.Version)
	}
}

func TestPersistVersionsSurviveDeleteAndRestart(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Store().Put("g", testGraph(1))
	s.Store().Put("g", testGraph(2))
	s.Store().Delete("g")

	s2 := openTest(t, dir)
	defer s2.Close()
	if _, ok := s2.Store().Get("g"); ok {
		t.Fatal("deleted snapshot came back")
	}
	// The tombstone preserved the counter: a re-created name must NOT mint a
	// second "version 1" (diff-cache ABA protection).
	if info, _ := s2.Store().Put("g", testGraph(3)); info.Version != 3 {
		t.Fatalf("re-created after delete+restart: version %d, want 3", info.Version)
	}
}

func TestPersistCrashDebrisRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Store().Put("g", testGraph(4.5))

	// Simulate a crash between the new version's graph-file rename and the
	// manifest rename: an orphaned v2 graph plus a stray temp file.
	snapDir := filepath.Join(dir, "snapshots")
	orphan := filepath.Join(snapDir, "g.v2.dcsg")
	if err := os.WriteFile(orphan, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(snapDir, "g.json.tmp")
	if err := os.WriteFile(tmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	defer s2.Close()
	snap, ok := s2.Store().Get("g")
	if !ok || snap.Version != 1 || snapGraph(t, snap).Weight(0, 1) != 4.5 {
		t.Fatalf("last committed version not recovered: %+v", snap)
	}
	if st := s2.PersistStats(); st.RestoreErrors != 0 {
		t.Fatalf("clean debris recovery counted errors: %+v", st)
	}
	for _, f := range []string{orphan, tmp} {
		if _, err := os.Stat(f); !os.IsNotExist(err) {
			t.Errorf("crash debris %s not swept", f)
		}
	}
}

func TestPersistCorruptGraphFileDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Store().Put("good", testGraph(1))
	s.Store().Put("bad", testGraph(2))

	// Flip a byte inside the committed graph file: the codec checksum must
	// catch it, the snapshot is skipped, the rest of the store boots.
	badFile := filepath.Join(dir, "snapshots", "bad.v1.dcsg")
	data, err := os.ReadFile(badFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-7] ^= 0x10
	if err := os.WriteFile(badFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	defer s2.Close()
	if _, ok := s2.Store().Get("good"); !ok {
		t.Fatal("intact snapshot lost")
	}
	if _, ok := s2.Store().Get("bad"); ok {
		t.Fatal("corrupt snapshot restored")
	}
	st := s2.PersistStats()
	if st.SnapshotsRestored != 1 || st.RestoreErrors != 1 {
		t.Fatalf("stats %+v, want 1 restored / 1 error", st)
	}
	// The corrupt name's version counter still survived via its manifest.
	if info, _ := s2.Store().Put("bad", testGraph(3)); info.Version != 2 {
		t.Fatalf("version after corrupt restore: %d, want 2", info.Version)
	}
}

func TestPersistStaleDeleteDoesNotClobberRecreation(t *testing.T) {
	// The hooks run outside the store lock, so a delete and a re-creation
	// racing can reach the persister out of order: save(v2) first, then the
	// delete that observed v1. The stale delete must be discarded — a
	// tombstone here would destroy the live v2 and regress the counter.
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Store().Put("g", testGraph(1))
	snap, _ := s.Store().Get("g")
	g2 := testGraph(2)
	s.persist.saveSnapshot(newSnapshot("g", 2, g2, snap.UpdatedAt), g2)
	s.persist.deleteSnapshot("g", 1) // stale: v2 is already durable

	s2 := openTest(t, dir)
	defer s2.Close()
	got, ok := s2.Store().Get("g")
	if !ok || got.Version != 2 || snapGraph(t, got).Weight(0, 1) != 2 {
		t.Fatalf("stale delete clobbered the re-created snapshot: %v %+v", ok, got)
	}
}

func TestPersistCorruptManifestSparesGraphFile(t *testing.T) {
	// A corrupt ~200-byte manifest must not cause the sweep to delete the
	// intact, checksummed graph it references — the payload stays on disk
	// for manual recovery even though the snapshot cannot be restored.
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Store().Put("g", testGraph(3))
	manifest := filepath.Join(dir, "snapshots", "g.json")
	if err := os.WriteFile(manifest, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	defer s2.Close()
	if _, ok := s2.Store().Get("g"); ok {
		t.Fatal("snapshot restored from a corrupt manifest")
	}
	if st := s2.PersistStats(); st.RestoreErrors != 1 {
		t.Fatalf("stats %+v, want 1 restore error", st)
	}
	for _, f := range []string{manifest, filepath.Join(dir, "snapshots", "g.v1.dcsg")} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("%s swept despite the unreadable manifest: %v", f, err)
		}
	}
}

func TestPersistWriteFailureSurfaces(t *testing.T) {
	// When the write-through mirror fails, the upload must NOT answer 200:
	// that would promise a durability the disk refused. (The in-memory
	// registry still takes the snapshot — readers keep working.)
	dir := t.TempDir()
	s := openTest(t, dir)
	defer s.Close()
	// Replace the snapshots directory with a file: every temp-file create
	// under it now fails with ENOTDIR, even when the tests run as root.
	snapDir := filepath.Join(dir, "snapshots")
	if err := os.RemoveAll(snapDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapDir, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	body := SnapshotRequest{Name: "g", GraphJSON: GraphJSON{N: 2, Edges: []EdgeJSON{{U: 0, V: 1, W: 1}}}}
	if code := doJSON(t, s, http.MethodPost, "/v1/snapshots", body, nil); code != http.StatusInternalServerError {
		t.Fatalf("upload with a broken mirror answered %d, want 500", code)
	}
	if st := s.PersistStats(); st.WriteErrors == 0 {
		t.Fatalf("write failure not counted: %+v", st)
	}
	if _, ok := s.Store().Get("g"); !ok {
		t.Fatal("in-memory registry should still hold the snapshot")
	}
	// Watch registration rolls back entirely on a persist failure.
	wdir := filepath.Join(dir, "watches")
	if err := os.RemoveAll(wdir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wdir, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, s, http.MethodPost, "/v1/watches", WatchRequest{Name: "w", N: 3}, nil); code != http.StatusInternalServerError {
		t.Fatalf("watch registration with a broken mirror answered %d, want 500", code)
	}
	if _, ok := s.watches.get("w"); ok {
		t.Fatal("failed registration left the watch registered")
	}
}

func TestPersistEscapedSnapshotNames(t *testing.T) {
	dir := t.TempDir()
	name := ".. spaced%name\x01" // hostile but '/'-free, as the API enforces
	s := openTest(t, dir)
	s.Store().Put(name, testGraph(6))

	s2 := openTest(t, dir)
	defer s2.Close()
	snap, ok := s2.Store().Get(name)
	if !ok || snapGraph(t, snap).Weight(0, 1) != 6 {
		t.Fatalf("escaped name not restored: %v %+v", ok, snap)
	}
}

// TestWatchCheckpointResume is the acceptance test for watch durability: a
// restarted watch's next observe must mine against the checkpointed
// expectation, not a cold tracker. A twin server that never restarts feeds
// on the same deterministic stream; after the restart the two must produce
// bitwise-identical reports (the binary codec round-trips the EWMA state
// exactly).
func TestWatchCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	clique := []int{2, 5, 7, 11}
	snaps := watchStream(42, 24, 6, 4, clique)
	req := WatchRequest{Name: "w", N: 24, Lambda: 0.5, MinDensity: 3}

	restarted := openTest(t, dir)
	twin := New(Config{})
	registerTestWatch(t, restarted, req)
	registerTestWatch(t, twin, req)
	for _, g := range snaps[:4] {
		g := g
		observeWatch(t, restarted, "w", WatchObserveRequest{Graph: &g})
		observeWatch(t, twin, "w", WatchObserveRequest{Graph: &g})
	}
	restarted.Flush()
	restarted.Close()

	s2 := openTest(t, dir)
	defer s2.Close()
	if st := s2.PersistStats(); st.WatchesRestored != 1 {
		t.Fatalf("stats %+v, want 1 watch restored", st)
	}
	var infos []WatchInfo
	if code := doJSON(t, s2, http.MethodGet, "/v1/watches", nil, &infos); code != http.StatusOK || len(infos) != 1 {
		t.Fatalf("watch list after restart: %d %v", code, infos)
	}
	if infos[0].Name != "w" || infos[0].Step != 4 || infos[0].Lambda != 0.5 || infos[0].MinDensity != 3 {
		t.Fatalf("restored watch info %+v", infos[0])
	}

	// The report ring survived the restart.
	var ring WatchReportsResponse
	if code := doJSON(t, s2, http.MethodGet, "/v1/watches/w/reports", nil, &ring); code != http.StatusOK {
		t.Fatalf("reports after restart: %d", code)
	}
	if len(ring.Reports) != 4 || ring.Reports[3].Step != 4 {
		t.Fatalf("restored ring %+v", ring.Reports)
	}

	for i, g := range snaps[4:] {
		g := g
		got := observeWatch(t, s2, "w", WatchObserveRequest{Graph: &g})
		want := observeWatch(t, twin, "w", WatchObserveRequest{Graph: &g})
		if got.Step != want.Step || got.Anomalous != want.Anomalous ||
			math.Float64bits(got.Contrast) != math.Float64bits(want.Contrast) {
			t.Fatalf("post-restart tick %d diverged: got %+v, want %+v", i, got, want)
		}
	}
	// Sanity on the scenario itself: the clique planted at step 4 was
	// absorbed pre-restart, so the restored expectation must NOT re-report
	// it — a cold tracker would.
	cold := New(Config{})
	registerTestWatch(t, cold, req)
	g := snaps[4]
	coldRep := observeWatch(t, cold, "w", WatchObserveRequest{Graph: &g})
	if !coldRep.Anomalous {
		t.Fatal("scenario broken: a cold tracker should flag the planted clique")
	}
}

// TestWatchDeltaResume feeds post-restart observations as edge deltas: the
// checkpointed delta base (last observation) must be what they apply to.
// The twin feeds full snapshots, so agreement is up to the incremental
// engine's floating-point tolerance, not bitwise.
func TestWatchDeltaResume(t *testing.T) {
	dir := t.TempDir()
	snaps := watchStream(7, 16, 5, 3, []int{1, 3, 8})
	req := WatchRequest{Name: "d", N: 16, Lambda: 0.4}

	restarted := openTest(t, dir)
	twin := New(Config{})
	for _, s := range []*Server{restarted, twin} {
		registerTestWatch(t, s, req)
		for _, g := range snaps[:3] {
			g := g
			observeWatch(t, s, "d", WatchObserveRequest{Graph: &g})
		}
	}
	restarted.Flush()
	restarted.Close()

	s2 := openTest(t, dir)
	defer s2.Close()
	for i := 3; i < len(snaps); i++ {
		delta := DeltaBetween(snaps[i-1], snaps[i])
		got := observeWatch(t, s2, "d", WatchObserveRequest{Delta: delta})
		g := snaps[i]
		want := observeWatch(t, twin, "d", WatchObserveRequest{Graph: &g})
		if got.Step != want.Step || got.Anomalous != want.Anomalous ||
			!approxEq(got.Contrast, want.Contrast) {
			t.Fatalf("delta tick %d diverged after restart: got %+v, want %+v", i, got, want)
		}
	}
	// The first post-restart delta tick has no warm-start prior and must
	// have re-solved from scratch.
	var ring WatchReportsResponse
	if code := doJSON(t, s2, http.MethodGet, "/v1/watches/d/reports", nil, &ring); code != http.StatusOK {
		t.Fatalf("reports: %d", code)
	}
	for _, r := range ring.Reports {
		if r.Step == 4 && r.Mode != "scratch" {
			t.Fatalf("first post-restart delta tick mode %q, want scratch", r.Mode)
		}
	}
}

func TestWatchRegistrationAloneSurvivesRestart(t *testing.T) {
	// A watch registered and never observed must come back (write-through
	// checkpoint at registration) even without Flush or Close.
	dir := t.TempDir()
	s := openTest(t, dir)
	registerTestWatch(t, s, WatchRequest{Name: "fresh", N: 5, Measure: "affinity"})

	s2 := openTest(t, dir)
	defer s2.Close()
	wt, ok := s2.watches.get("fresh")
	if !ok || wt.measure != "affinity" || wt.n != 5 {
		t.Fatalf("unobserved watch not restored: %v", ok)
	}
	// And it is observable immediately.
	g := GraphJSON{N: 5, Edges: []EdgeJSON{{U: 0, V: 1, W: 9}}}
	rep := observeWatch(t, s2, "fresh", WatchObserveRequest{Graph: &g})
	if rep.Step != 1 {
		t.Fatalf("first observe after restart: step %d", rep.Step)
	}
}

func TestWatchDeletePersists(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	registerTestWatch(t, s, WatchRequest{Name: "gone", N: 4})
	if code := doJSON(t, s, http.MethodDelete, "/v1/watches/gone", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}

	s2 := openTest(t, dir)
	defer s2.Close()
	if _, ok := s2.watches.get("gone"); ok {
		t.Fatal("deleted watch resurrected by restart")
	}
	if st := s2.PersistStats(); st.WatchesRestored != 0 || st.RestoreErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
	// No stray files either.
	entries, err := os.ReadDir(filepath.Join(dir, "watches"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "gone") {
			t.Fatalf("leftover watch file %s", e.Name())
		}
	}
}

func TestWatchDeleteDoesNotEraseReRegistration(t *testing.T) {
	// The delete handler removes from the registry, then (later) removes the
	// files. If a new same-named watch registers in between, its durable
	// state — promised by the registration's 200 — must survive the delayed
	// file removal.
	dir := t.TempDir()
	s := openTest(t, dir)
	registerTestWatch(t, s, WatchRequest{Name: "w", N: 4})
	s.watches.remove("w") // T1's registry remove committed...
	registerTestWatch(t, s, WatchRequest{Name: "w", N: 9, Measure: "affinity"})
	s.persist.deleteWatch("w") // ...and its file removal arrives only now

	s2 := openTest(t, dir)
	defer s2.Close()
	wt, ok := s2.watches.get("w")
	if !ok || wt.n != 9 || wt.measure != "affinity" {
		t.Fatalf("re-registered watch erased by the stale delete: %v", ok)
	}
}

func TestHealthzReportsPersistence(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Store().Put("h", testGraph(1))
	registerTestWatch(t, s, WatchRequest{Name: "hw", N: 3})
	s.Close()

	s2 := openTest(t, dir)
	defer s2.Close()
	var health HealthResponse
	if code := doJSON(t, s2, http.MethodGet, "/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	p := health.Persistence
	if !p.Enabled || p.SnapshotsRestored != 1 || p.WatchesRestored != 1 {
		t.Fatalf("healthz persistence %+v", p)
	}

	// In-memory servers advertise persistence as disabled.
	mem := New(Config{})
	var memHealth HealthResponse
	doJSON(t, mem, http.MethodGet, "/healthz", nil, &memHealth)
	if memHealth.Persistence.Enabled {
		t.Fatal("in-memory server claims persistence")
	}
}
