package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

var (
	// errQueueFull rejects a request immediately when the waiting line for a
	// pool slot is already at its configured bound.
	errQueueFull = errors.New("serve: worker queue full")
	// errPoolClosed rejects waiting and future requests once the pool has
	// been shut down.
	errPoolClosed = errors.New("serve: server shutting down")
)

// workerPool bounds how many mining jobs run at once. Each admitted request
// occupies one slot for the duration of its computation; excess requests wait
// until a slot frees, their context is done, or the pool closes. An optional
// bound on the waiting line itself (maxWaiting) turns overload into an
// immediate rejection instead of an ever-growing queue. Per-job CPU fan-out
// is separate: the affinity solvers additionally split their initializations
// over Options.Parallelism goroutines inside one slot.
type workerPool struct {
	sem      chan struct{}
	inFlight atomic.Int64
	// waiting counts every queued acquire (sync and job) for observability;
	// syncWaiting counts only the bounded (synchronous) ones, so the
	// maxWaiting check cannot be consumed by job backlog.
	syncWaiting atomic.Int64
	waiting     atomic.Int64
	maxWaiting  int64 // 0 = unlimited
	closed      chan struct{}
	closeOnce   sync.Once
}

func newWorkerPool(size, maxWaiting int) *workerPool {
	if size < 1 {
		size = 1
	}
	if maxWaiting < 0 {
		maxWaiting = 0
	}
	return &workerPool{
		sem:        make(chan struct{}, size),
		maxWaiting: int64(maxWaiting),
		closed:     make(chan struct{}),
	}
}

// acquire blocks until a slot is free, ctx is done, or the pool closes. A
// free slot is taken without ever touching the waiting line; otherwise the
// caller joins it, failing fast with errQueueFull when it is already at its
// bound. This is the synchronous-request entry point.
func (p *workerPool) acquire(ctx context.Context) error {
	return p.acquireBounded(ctx, true)
}

// acquireJob is acquire without the waiting-line bound: async jobs are
// admission-controlled at submit time (Config.MaxQueue on active jobs), so
// an already-accepted job must never be bounced by the synchronous queue
// bound it does not participate in.
func (p *workerPool) acquireJob(ctx context.Context) error {
	return p.acquireBounded(ctx, false)
}

func (p *workerPool) acquireBounded(ctx context.Context, bounded bool) error {
	select {
	case <-p.closed:
		return errPoolClosed
	default:
	}
	// Fast path: an uncontended slot never counts as waiting, so a bursty
	// arrival cannot be queue-rejected while capacity is free.
	select {
	case p.sem <- struct{}{}:
		return p.admitted()
	default:
	}
	p.waiting.Add(1)
	defer p.waiting.Add(-1)
	if bounded && p.maxWaiting > 0 {
		if w := p.syncWaiting.Add(1); w > p.maxWaiting {
			p.syncWaiting.Add(-1)
			return errQueueFull
		}
		defer p.syncWaiting.Add(-1)
	}
	select {
	case p.sem <- struct{}{}:
		return p.admitted()
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closed:
		return errPoolClosed
	}
}

// admitted finalizes a won slot — unless the pool closed in the meantime: a
// select with both a freed slot and a concurrent close ready picks randomly,
// so the winner must re-check or close()'s reject-all guarantee breaks.
func (p *workerPool) admitted() error {
	select {
	case <-p.closed:
		<-p.sem
		return errPoolClosed
	default:
	}
	p.inFlight.Add(1)
	return nil
}

func (p *workerPool) release() {
	p.inFlight.Add(-1)
	<-p.sem
}

// close rejects every waiting acquire (and all future ones) with
// errPoolClosed. Slots already held stay valid until released; their solvers
// are stopped separately through context cancellation. Idempotent.
func (p *workerPool) close() {
	p.closeOnce.Do(func() { close(p.closed) })
}

// isClosed reports whether close has been called.
func (p *workerPool) isClosed() bool {
	select {
	case <-p.closed:
		return true
	default:
		return false
	}
}

// InFlight reports how many jobs hold a slot right now.
func (p *workerPool) InFlight() int {
	return int(p.inFlight.Load())
}

// Waiting reports how many requests are queued for a slot right now.
func (p *workerPool) Waiting() int {
	return int(p.waiting.Load())
}
