package serve

import (
	"context"
	"sync/atomic"
)

// workerPool bounds how many mining jobs run at once. Each admitted request
// occupies one slot for the duration of its computation; excess requests wait
// until a slot frees or their context is done. Per-job CPU fan-out is
// separate: the affinity solvers additionally split their initializations
// over Options.Parallelism goroutines inside one slot.
type workerPool struct {
	sem      chan struct{}
	inFlight atomic.Int64
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	return &workerPool{sem: make(chan struct{}, size)}
}

// acquire blocks until a slot is free or ctx is done.
func (p *workerPool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		p.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *workerPool) release() {
	p.inFlight.Add(-1)
	<-p.sem
}

// InFlight reports how many jobs hold a slot right now.
func (p *workerPool) InFlight() int {
	return int(p.inFlight.Load())
}
