package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestPoolQueueFullRejection(t *testing.T) {
	p := newWorkerPool(1, 1)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter is allowed to queue...
	waiterErr := make(chan error, 1)
	go func() {
		waiterErr <- p.acquire(context.Background())
	}()
	waitFor(t, time.Second, func() bool { return p.Waiting() == 1 }, "waiter never queued")
	// ...the next request is rejected immediately, well before any timeout.
	start := time.Now()
	if err := p.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire over the queue bound: err %v, want errQueueFull", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("queue-full rejection took %v, want immediate", elapsed)
	}
	// Releasing the slot admits the queued waiter.
	p.release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	p.release()
	if got := p.InFlight(); got != 0 {
		t.Fatalf("in-flight %d after all releases, want 0", got)
	}
}

func TestPoolReleaseAfterCancel(t *testing.T) {
	p := newWorkerPool(1, 0)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A waiter whose context dies must leave without a slot (nothing to
	// release) and without corrupting the counters.
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- p.acquire(ctx) }()
	waitFor(t, time.Second, func() bool { return p.Waiting() == 1 }, "waiter never queued")
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err %v, want context.Canceled", err)
	}
	waitFor(t, time.Second, func() bool { return p.Waiting() == 0 }, "waiting count not restored")
	if got := p.InFlight(); got != 1 {
		t.Fatalf("in-flight %d, want 1 (only the original holder)", got)
	}
	// The slot the holder releases is immediately acquirable: the cancelled
	// waiter did not consume it.
	p.release()
	if err := p.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	p.release()
}

func TestPoolCloseWhileWaiting(t *testing.T) {
	p := newWorkerPool(1, 0)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- p.acquire(context.Background())
		}()
	}
	waitFor(t, time.Second, func() bool { return p.Waiting() == waiters }, "waiters never queued")
	p.close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, errPoolClosed) {
			t.Fatalf("waiter after close: err %v, want errPoolClosed", err)
		}
	}
	// New arrivals are rejected too, even though a slot is technically free
	// after the holder releases.
	p.release()
	if err := p.acquire(context.Background()); !errors.Is(err, errPoolClosed) {
		t.Fatalf("acquire after close: err %v, want errPoolClosed", err)
	}
	// close is idempotent.
	p.close()
}
