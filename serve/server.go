package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	dcs "github.com/dcslib/dcs"
)

// Config tunes a Server. The zero value is usable: a pool of 4 jobs and
// sequential solvers.
type Config struct {
	// PoolSize bounds how many mining requests compute at once; further
	// requests queue until a slot frees (or their context is cancelled).
	// Default 4.
	PoolSize int
	// Parallelism is the default worker-goroutine degree per solve, used when
	// a request does not ask for one. 0 means sequential; results are
	// identical either way.
	Parallelism int
	// MaxParallelism caps the per-request "parallelism" field (and the
	// default above): a request asking for more is clamped to this value and
	// the response echoes the degree actually used. 0 means GOMAXPROCS;
	// negative means 1 (parallel solves disabled).
	MaxParallelism int
	// QueueTimeout bounds how long a request may wait for a pool slot before
	// being rejected with 503. Default 30s.
	QueueTimeout time.Duration
	// MaxBodyBytes caps request body size (413 beyond it). Default 32 MiB.
	MaxBodyBytes int64
	// MaxVertices caps the vertex count of uploaded and inline graphs, so a
	// tiny request cannot demand O(n) allocations for an astronomical n.
	// Operator-preloaded snapshots are not subject to it. Default 2,000,000.
	MaxVertices int
	// DiffCacheSize bounds the difference-graph LRU: built GD = G2 − αG1
	// graphs are cached per (snapshot1, snapshot2, alpha) so repeated /v1/dcs
	// and /v1/topics calls against the same snapshot pair skip the O(m1+m2+n)
	// rebuild. Replacing a snapshot bumps its version and thereby invalidates
	// its cached differences. Default 64 entries; negative disables caching.
	DiffCacheSize int
	// SolveTimeout bounds how long one mining request may compute once it
	// holds a pool slot (queueing time does not count). An expired solve is
	// interrupted at its next cancellation checkpoint and returns its
	// best-so-far partial result with "interrupted": true. 0 means unlimited.
	// Client disconnects and job cancellations interrupt solves the same way
	// regardless of this setting.
	SolveTimeout time.Duration
	// MaxQueue bounds the overload backlog: how many synchronous requests may
	// wait for a pool slot (beyond it they are rejected with 503 immediately
	// instead of queueing until QueueTimeout), and likewise how many async
	// jobs may be queued or running at once. 0 means unlimited.
	MaxQueue int
	// JobRetention bounds how many *finished* async jobs are kept for
	// polling; beyond it the oldest finished jobs are evicted (a GET for an
	// evicted id returns 404). Queued and running jobs are never evicted.
	// Default 256.
	JobRetention int
	// MaxWatches bounds how many streaming watches may be registered at
	// once; a POST /v1/watches beyond it is rejected with 503 until one is
	// deleted. Each watch pins two O(m) graphs (expectation and last
	// observation). 0 means the default 64; negative disables registration.
	MaxWatches int
	// WatchReports is the default per-watch report-ring capacity; each
	// watch may override it at registration (capped at 4096). Default 32.
	WatchReports int
	// WatchResync is the default scratch re-solve interval for delta-fed
	// watches: every K-th delta tick mines the full difference graph from
	// scratch instead of incrementally. Each watch may override it at
	// registration. 0 means the evolve package default (32); 1 disables
	// incremental mining outright.
	WatchResync int
	// MemLimit bounds, in bytes, how much memory a durable server (Open)
	// spends on open snapshot graphs: snapshots are persisted in the
	// mmap-friendly v2 binary layout, opened lazily, and the coldest
	// unpinned mappings are unmapped once the sum of open-handle bytes
	// exceeds this budget (they re-map on demand). Graphs pinned by a
	// running solve are never unmapped, so the budget may be exceeded
	// transiently while pins drain. 0 means unlimited (snapshots are still
	// served lazily from their mappings — the kernel page cache, not the Go
	// heap, holds the adjacency). Ignored by New, whose snapshots are
	// resident heap graphs.
	MemLimit int64
	// CheckpointInterval is how often a persistent server (see Open) writes
	// watch-state checkpoints for watches observed since their last one.
	// Snapshots are mirrored write-through and do not wait for it. Default
	// 30s; negative disables the periodic loop (Flush/Close still
	// checkpoint). Ignored by New.
	CheckpointInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.PoolSize == 0 {
		c.PoolSize = 4
	}
	if c.MaxParallelism == 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxParallelism < 1 {
		c.MaxParallelism = 1
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 2_000_000
	}
	if c.DiffCacheSize == 0 {
		c.DiffCacheSize = 64
	}
	if c.JobRetention == 0 {
		c.JobRetention = 256
	}
	if c.MaxWatches == 0 {
		c.MaxWatches = 64
	}
	if c.WatchReports < 1 {
		c.WatchReports = 32
	}
	if c.WatchReports > maxWatchReports {
		c.WatchReports = maxWatchReports
	}
	if c.WatchResync < 0 {
		c.WatchResync = 0 // fall back to the evolve default
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	return c
}

// Server is the dcsd HTTP service; it implements http.Handler. Construct
// with New, preload snapshots through Store, and hand it to http.Serve.
type Server struct {
	cfg     Config
	store   *Store
	pool    *workerPool
	dcache  *diffCache
	jobs    *jobRegistry
	watches *watchRegistry
	mux     *http.ServeMux
	start   time.Time

	// persist is nil on an in-memory Server (New); Open sets it and starts
	// the checkpoint loop.
	persist *persister
	cpStop  chan struct{}
	cpDone  chan struct{}
	cpOnce  sync.Once

	// mem is the snapshot memory budget (nil on an in-memory Server): the
	// byte-accounted LRU of open snapshot mappings, shared with the store.
	mem *memoryManager
}

// New returns a ready Server with an empty snapshot registry.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		store: NewStore(),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.dcache = newDiffCache(max(s.cfg.DiffCacheSize, 0))
	// Replacing a snapshot (through any path) purges its cached differences.
	s.store.onReplace = s.dcache.purgeName
	s.pool = newWorkerPool(s.cfg.PoolSize, s.cfg.MaxQueue)
	s.jobs = newJobRegistry(s.cfg.JobRetention)
	s.watches = newWatchRegistry()
	s.mux.HandleFunc("/v1/snapshots", s.handleSnapshots)
	s.mux.HandleFunc("/v1/snapshots/", s.handleSnapshotByName)
	s.mux.HandleFunc("/v1/dcs", s.handleDCS)
	s.mux.HandleFunc("/v1/topics", s.handleTopics)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/v1/watches", s.handleWatches)
	s.mux.HandleFunc("/v1/watches/", s.handleWatchByPath)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Open returns a Server whose state is durable under dataDir: on boot it
// recovers every committed snapshot (last fully-committed version, binary
// checksums verified) and every checkpointed streaming watch (EWMA
// expectation, delta base, report ring — the next observe mines against
// the restored expectation, not a cold tracker), then mirrors every
// snapshot Put/Delete write-through and checkpoints watch state every
// Config.CheckpointInterval plus on Flush/Close. Version counters survive
// restarts, deletions included, preserving the diff cache's (name, version)
// ABA protection. Restore counts are on /healthz (see PersistStats).
func Open(cfg Config, dataDir string) (*Server, error) {
	s := New(cfg)
	p, err := openPersister(dataDir)
	if err != nil {
		return nil, err
	}
	// The memory budget attaches before recovery so recovered snapshots are
	// registered lazily (checksum-verified, mapped on first use) instead of
	// loaded — boot cost is O(metadata), not O(graph bytes).
	s.mem = newMemoryManager(s.cfg.MemLimit)
	s.store.mem = s.mem
	p.recoverSnapshots(s.store)
	for _, w := range p.recoverWatches(*s.defaultOptions()) {
		s.watches.restore(w)
	}
	// Hooks attach only after recovery: restoring must not rewrite what it
	// just read.
	s.persist = p
	s.store.persist = p
	p.lookup = func(name string) (*watch, bool) { return s.watches.get(name) }
	s.cpStop = make(chan struct{})
	s.cpDone = make(chan struct{})
	go s.checkpointLoop()
	return s, nil
}

func (s *Server) checkpointLoop() {
	defer close(s.cpDone)
	if s.cfg.CheckpointInterval < 0 {
		<-s.cpStop
		return
	}
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.persist.flush()
		case <-s.cpStop:
			return
		}
	}
}

// Flush checkpoints the state of every watch observed since its last
// checkpoint. Snapshots are mirrored write-through and need no flushing.
// It is a no-op on an in-memory Server; dcsd calls it on SIGTERM so a
// graceful stop loses no watch progress.
func (s *Server) Flush() {
	if s.persist != nil {
		s.persist.flush()
	}
}

// Store exposes the snapshot registry, e.g. for preloading at startup.
func (s *Server) Store() *Store { return s.store }

// PersistStats reports the persistence counters (restored snapshot/watch
// counts, write and restore errors); Enabled is false on an in-memory
// Server. The same numbers are served on /healthz.
func (s *Server) PersistStats() PersistStats {
	if s.persist == nil {
		return PersistStats{}
	}
	return s.persist.statsSnapshot()
}

// MemoryStats reports the snapshot memory budget's counters (mapped bytes,
// open/pinned snapshots, evictions) plus the runtime's in-use heap; Enabled
// is false on an in-memory Server. The same numbers are served on /healthz.
func (s *Server) MemoryStats() MemoryStats {
	var st MemoryStats
	if s.mem != nil {
		st = s.mem.stats()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.HeapInUseBytes = ms.HeapInuse
	return st
}

// Close shuts the mining machinery down: requests waiting for a pool slot
// are rejected with 503, and every queued or running async job is cancelled
// (running solvers stop at their next checkpoint and record a cancelled
// status with their partial result). On a persistent Server the checkpoint
// loop is stopped and outstanding watch state is flushed. The snapshot
// store and read-only endpoints keep working; Close is idempotent.
func (s *Server) Close() {
	s.pool.close()
	s.jobs.cancelAll()
	if s.persist != nil {
		s.cpOnce.Do(func() { close(s.cpStop) })
		<-s.cpDone
		s.persist.flush()
	}
	if s.mem != nil {
		// Unmap every unpinned snapshot; mappings pinned by still-draining
		// jobs close when their last pin releases.
		s.mem.closeAll()
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// effectiveParallelism resolves a request's worker degree: 0 (absent) means
// the server default, and the result is clamped to [1, Config.MaxParallelism]
// — a request beyond the cap is served at the cap, with the response echoing
// the degree actually used rather than silently reporting zero.
func (s *Server) effectiveParallelism(requested int) int {
	p := requested
	if p == 0 {
		p = s.cfg.Parallelism
	}
	if p > s.cfg.MaxParallelism {
		p = s.cfg.MaxParallelism
	}
	if p < 1 {
		p = 1
	}
	return p
}

func (s *Server) options(parallelism int) *dcs.Options {
	return &dcs.Options{Parallelism: parallelism}
}

// defaultOptions are the solver options for paths without a per-request
// degree (watch evaluation, /v1/topics): the server default, clamped.
func (s *Server) defaultOptions() *dcs.Options {
	return s.options(s.effectiveParallelism(0))
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // headers are gone; nothing to recover
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// httpError tags an error with the status code the handler should emit.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeHTTPError(w http.ResponseWriter, err error) {
	if he, ok := err.(*httpError); ok {
		writeError(w, he.status, "%s", he.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, "%s", err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Snapshots:   s.store.Len(),
		InFlight:    s.pool.InFlight(),
		Waiting:     s.pool.Waiting(),
		UptimeSec:   time.Since(s.start).Seconds(),
		DiffCache:   s.dcache.stats(),
		Jobs:        s.jobs.stats(),
		Watches:     s.watches.stats(),
		Persistence: s.PersistStats(),
		Memory:      s.MemoryStats(),
	})
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.store.List())
	case http.MethodPost:
		var req SnapshotRequest
		if err := s.decodeBody(w, r, &req); err != nil {
			writeHTTPError(w, err)
			return
		}
		if req.Name == "" {
			writeError(w, http.StatusBadRequest, "snapshot name is required")
			return
		}
		// '/' would make the name unreachable for DELETE /v1/snapshots/{name}
		// — an undeletable snapshot is a permanent leak.
		if strings.Contains(req.Name, "/") {
			writeError(w, http.StatusBadRequest, "snapshot name must not contain '/'")
			return
		}
		if req.GraphJSON.N > s.cfg.MaxVertices {
			writeError(w, http.StatusBadRequest, "vertex count %d exceeds the server limit %d", req.GraphJSON.N, s.cfg.MaxVertices)
			return
		}
		g, err := req.GraphJSON.Build()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad graph: %s", err)
			return
		}
		info, err := s.store.Put(req.Name, g)
		if err != nil {
			// The in-memory registry has the new version, but the durable
			// mirror does not: a 200 would promise a durability the disk
			// refused, so fail loudly and let the client retry.
			writeError(w, http.StatusInternalServerError,
				"snapshot %q v%d stored in memory but failed to persist: %s", info.Name, info.Version, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleSnapshotByName serves DELETE /v1/snapshots/{name}: without it a
// long-running dcsd leaks every graph ever registered. Deleting also purges
// the name's cached difference graphs through the store's replace hook.
func (s *Server) handleSnapshotByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/snapshots/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
		return
	}
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "use DELETE")
		return
	}
	ok, err := s.store.Delete(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown snapshot %q", name)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError,
			"snapshot %q deleted in memory but the deletion failed to persist: %s", name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// resolve turns one side of a request (snapshot name or inline graph) into a
// graph plus the reference echoed in the response. The release func pins the
// snapshot's mapping (out-of-core stores) until the caller is done reading
// the graph; it is a no-op for inline and resident graphs. Call it exactly
// once; resolve never returns a nil release alongside a nil error.
func (s *Server) resolve(side, name string, inline *GraphJSON) (*dcs.Graph, func(), SnapshotRef, error) {
	switch {
	case name != "" && inline != nil:
		return nil, nil, SnapshotRef{}, badRequest("%s: give a snapshot name or an inline graph, not both", side)
	case name != "":
		snap, ok := s.store.Get(name)
		if !ok {
			return nil, nil, SnapshotRef{}, badRequest("%s: unknown snapshot %q", side, name)
		}
		g, release, err := snap.Acquire()
		if errors.Is(err, errSnapshotGone) {
			// A delete (or replace) landed between Get and Acquire; to the
			// client that ordering is simply "the snapshot was gone".
			return nil, nil, SnapshotRef{}, badRequest("%s: unknown snapshot %q", side, name)
		}
		if err != nil {
			return nil, nil, SnapshotRef{}, err
		}
		return g, release, SnapshotRef{Name: snap.Name, Version: snap.Version}, nil
	case inline != nil:
		if inline.N > s.cfg.MaxVertices {
			return nil, nil, SnapshotRef{}, badRequest("%s: vertex count %d exceeds the server limit %d", side, inline.N, s.cfg.MaxVertices)
		}
		g, err := inline.Build()
		if err != nil {
			return nil, nil, SnapshotRef{}, badRequest("%s: bad inline graph: %s", side, err)
		}
		return g, func() {}, SnapshotRef{Inline: true}, nil
	default:
		return nil, nil, SnapshotRef{}, badRequest("%s: missing (name a snapshot or inline a graph)", side)
	}
}

// resolvePair resolves both sides and checks they share a vertex set. The
// single release func unpins both sides; the caller must invoke it exactly
// once, after the last read of either graph (for async jobs: when the job
// finishes, not when the submit handler returns).
func (s *Server) resolvePair(req *DCSRequest) (g1, g2 *dcs.Graph, release func(), r1, r2 SnapshotRef, err error) {
	g1, rel1, r1, err := s.resolve("g1", req.G1, req.Graph1)
	if err != nil {
		return nil, nil, nil, SnapshotRef{}, SnapshotRef{}, err
	}
	g2, rel2, r2, err := s.resolve("g2", req.G2, req.Graph2)
	if err != nil {
		rel1()
		return nil, nil, nil, SnapshotRef{}, SnapshotRef{}, err
	}
	if g1.N() != g2.N() {
		rel1()
		rel2()
		return nil, nil, nil, SnapshotRef{}, SnapshotRef{},
			badRequest("vertex counts differ: g1 has %d, g2 has %d", g1.N(), g2.N())
	}
	return g1, g2, func() { rel1(); rel2() }, r1, r2, nil
}

// decodeBody decodes a JSON request body, bounded by MaxBodyBytes.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, out any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(out); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds the server limit %d bytes", tooLarge.Limit)}
		}
		return badRequest("bad JSON: %s", err)
	}
	return nil
}

// admit reserves a pool slot for the request, bounded by QueueTimeout.
// The caller must invoke the returned release func when done.
func (s *Server) admit(r *http.Request) (func(), error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueTimeout)
	defer cancel()
	if err := s.pool.acquire(ctx); err != nil {
		msg := "server busy: no worker slot within queue timeout"
		switch {
		case errors.Is(err, errQueueFull):
			msg = "server busy: worker queue full"
		case errors.Is(err, errPoolClosed):
			msg = "server shutting down"
		}
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: msg}
	}
	return s.pool.release, nil
}

// solveCtx derives the context one admitted solve runs under: the request's
// own context (so a client disconnect interrupts the solver and frees the
// slot) bounded by SolveTimeout when configured.
func (s *Server) solveCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.SolveTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.SolveTimeout)
	}
	return r.Context(), func() {}
}

// weightsOf extracts the simplex weights aligned with S. The embedding type
// lives in an internal package, so it is taken structurally.
func weightsOf(x interface{ Get(u int) float64 }, S []int) []float64 {
	if x == nil {
		return nil
	}
	out := make([]float64, len(S))
	for i, v := range S {
		out[i] = x.Get(v)
	}
	return out
}

// validateDCSRequest checks the measure/k/alpha fields shared by the
// synchronous /v1/dcs handler and the async job submit.
func validateDCSRequest(req *DCSRequest) error {
	switch req.Measure {
	case "avgdeg", "affinity", "totalweight", "ratio":
	case "":
		return badRequest("measure is required: avgdeg | affinity | totalweight | ratio")
	default:
		return badRequest("unknown measure %q: want avgdeg | affinity | totalweight | ratio", req.Measure)
	}
	if req.K < 0 {
		return badRequest("k must be non-negative")
	}
	// Alpha is a pointer so that an explicit 0 (mine GD = G2, no G1
	// subtraction) is distinguishable from "absent, default to 1".
	if a := req.Alpha; a != nil && (*a < 0 || math.IsNaN(*a) || math.IsInf(*a, 0)) {
		return badRequest("alpha must be a non-negative finite number")
	}
	if req.Parallelism < 0 {
		return badRequest("parallelism must be non-negative (0 means the server default)")
	}
	return nil
}

// effectiveAlpha resolves the request's α: absent means 1, an explicit value
// — including 0 — is honored.
func effectiveAlpha(req *DCSRequest) float64 {
	if req.Alpha != nil {
		return *req.Alpha
	}
	return 1
}

// solve runs one validated mining request against its resolved graphs under
// ctx. The caller must already hold a pool slot. When ctx is cancelled — the
// client disconnected, the SolveTimeout expired or a job was cancelled — the
// solver in flight stops at its next checkpoint and the response carries the
// best-so-far partial result with Interrupted set.
func (s *Server) solve(ctx context.Context, req *DCSRequest, g1, g2 *dcs.Graph, r1, r2 SnapshotRef) (*DCSResponse, error) {
	alpha := effectiveAlpha(req)
	k := req.K
	if k == 0 {
		k = 1
	}
	// Clamp-and-echo: the effective degree is reported even for measures the
	// engine runs sequentially (totalweight — EgoScan's seed dedup is
	// order-dependent), so a client always learns what its request resolved
	// to.
	par := s.effectiveParallelism(req.Parallelism)
	started := time.Now()
	resp := &DCSResponse{Measure: req.Measure, G1: r1, G2: r2, Alpha: alpha, Parallelism: par}

	switch req.Measure {
	case "ratio":
		resp.Alpha = 0 // output field Alpha is input-only here; Ratio carries the answer
		res := dcs.FindMaxRatioContrastParCtx(ctx, g1, g2, par)
		resp.Interrupted = res.Interrupted
		rj := &RatioJSON{S: res.S, Density1: res.Density1, Density2: res.Density2}
		if math.IsInf(res.Alpha, 1) {
			rj.Unbounded = true
		} else {
			rj.Alpha = res.Alpha
		}
		resp.Ratio = rj
	case "avgdeg":
		gd := s.differenceGraph(g1, g2, r1, r2, alpha)
		results, interrupted := dcs.TopKAverageDegreeDCSOnParCtx(ctx, gd, k, par)
		resp.Interrupted = interrupted
		for _, res := range results {
			if err := dcs.ValidateAverageDegreeResult(gd, res); err != nil {
				return nil, fmt.Errorf("result failed validation: %s", err)
			}
			resp.Results = append(resp.Results, SubgraphJSON{
				S:              res.S,
				Density:        res.Density,
				TotalWeight:    res.TotalWeight,
				EdgeDensity:    res.EdgeDensity,
				ApproxRatio:    res.Ratio,
				PositiveClique: res.PositiveClique,
				Connected:      res.Connected,
			})
		}
	case "affinity":
		gd := s.differenceGraph(g1, g2, r1, r2, alpha)
		if k == 1 {
			res := dcs.FindGraphAffinityDCSOnCtx(ctx, gd, s.options(par))
			resp.Interrupted = res.Interrupted
			if err := dcs.ValidateGraphAffinityResult(gd, res); err != nil {
				return nil, fmt.Errorf("result failed validation: %s", err)
			}
			resp.Results = append(resp.Results, gaSubgraph(gd, res.S, res.Affinity, weightsOf(res.X, res.S)))
		} else {
			cliques, interrupted := dcs.TopKGraphAffinityDCSOnCtx(ctx, gd, k, s.options(par))
			resp.Interrupted = interrupted
			for _, c := range cliques {
				resp.Results = append(resp.Results, gaSubgraph(gd, c.S, c.Affinity, weightsOf(c.X, c.S)))
			}
		}
	case "totalweight":
		gd := s.differenceGraph(g1, g2, r1, r2, alpha)
		res := dcs.FindMaxTotalWeightSubgraphOnCtx(ctx, gd)
		resp.Interrupted = res.Interrupted
		resp.Results = append(resp.Results, SubgraphJSON{
			S:              res.S,
			Density:        res.Density,
			TotalWeight:    res.TotalWeight,
			EdgeDensity:    res.EdgeDensity,
			PositiveClique: res.PositiveClique,
			Connected:      gd.IsConnected(res.S),
		})
	}
	resp.ElapsedMS = float64(time.Since(started)) / float64(time.Millisecond)
	return resp, nil
}

func (s *Server) handleDCS(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req DCSRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	if err := validateDCSRequest(&req); err != nil {
		writeHTTPError(w, err)
		return
	}
	g1, g2, unpin, r1, r2, err := s.resolvePair(&req)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	defer unpin()
	release, err := s.admit(r)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	defer release()

	ctx, cancel := s.solveCtx(r)
	defer cancel()
	resp, err := s.solve(ctx, &req, g1, g2, r1, r2)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	name1, name2 := q.Get("g1"), q.Get("g2")
	if name1 == "" || name2 == "" {
		writeError(w, http.StatusBadRequest, "g1 and g2 query parameters are required")
		return
	}
	k := 5
	if raw := q.Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = v
	}
	direction := q.Get("direction")
	if direction == "" {
		direction = "emerging"
	}
	if direction != "emerging" && direction != "disappearing" {
		writeError(w, http.StatusBadRequest, "direction must be emerging or disappearing")
		return
	}
	req := DCSRequest{G1: name1, G2: name2}
	g1, g2, unpin, r1, r2, err := s.resolvePair(&req)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	defer unpin()
	release, err := s.admit(r)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	defer release()

	ctx, cancel := s.solveCtx(r)
	defer cancel()
	started := time.Now()
	// Emerging topics are denser in g2; disappearing ones denser in g1. The
	// two directions cache under distinct (ordered) keys; only the requested
	// one is built.
	var gd *dcs.Graph
	if direction == "disappearing" {
		gd = s.differenceGraph(g2, g1, r2, r1, 1)
	} else {
		gd = s.differenceGraph(g1, g2, r1, r2, 1)
	}
	cliques, interrupted := dcs.TopContrastCliquesOnCtx(ctx, gd, s.defaultOptions())
	resp := TopicsResponse{G1: r1, G2: r2, Direction: direction, Interrupted: interrupted}
	for i, c := range cliques {
		if i >= k {
			break
		}
		resp.Topics = append(resp.Topics, gaSubgraph(gd, c.S, c.Affinity, weightsOf(c.X, c.S)))
	}
	resp.ElapsedMS = float64(time.Since(started)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// gaSubgraph assembles the response record for an affinity-measure subgraph,
// re-deriving the secondary metrics from the difference graph in one walk.
func gaSubgraph(gd *dcs.Graph, S []int, affinity float64, weights []float64) SubgraphJSON {
	w, density, edgeDensity := gd.SubgraphMetrics(S)
	return SubgraphJSON{
		S:              S,
		Density:        density,
		TotalWeight:    w,
		EdgeDensity:    edgeDensity,
		Affinity:       affinity,
		Weights:        weights,
		PositiveClique: gd.IsPositiveClique(S),
		Connected:      gd.IsConnected(S),
	}
}
