package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fp builds the *float64 request fields (Alpha) from a literal.
func fp(v float64) *float64 { return &v }

// fig1Pair is the running example of the paper's Fig. 1 (also used by the
// package dcs examples): the contrast subgraph is {0, 2, 3} under both
// density measures.
func fig1Pair() (g1, g2 GraphJSON) {
	g1 = GraphJSON{N: 5, Edges: []EdgeJSON{
		{0, 2, 2}, {0, 3, 2}, {2, 3, 1}, {2, 4, 3}, {1, 4, 2},
	}}
	g2 = GraphJSON{N: 5, Edges: []EdgeJSON{
		{0, 1, 1}, {0, 2, 5}, {0, 3, 6}, {2, 3, 4}, {2, 4, 2}, {1, 4, 3},
	}}
	return
}

// doJSON runs one request against the handler and decodes the JSON response.
func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// upload registers the Fig. 1 snapshots as "old" and "new".
func upload(t *testing.T, s *Server) {
	t.Helper()
	g1, g2 := fig1Pair()
	for _, req := range []SnapshotRequest{
		{Name: "old", GraphJSON: g1},
		{Name: "new", GraphJSON: g2},
	} {
		if code := doJSON(t, s, http.MethodPost, "/v1/snapshots", req, nil); code != http.StatusOK {
			t.Fatalf("upload %q: status %d", req.Name, code)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	var h HealthResponse
	if code := doJSON(t, s, http.MethodGet, "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if h.Status != "ok" || h.Snapshots != 0 || h.InFlight != 0 {
		t.Fatalf("unexpected health %+v", h)
	}
	if code := doJSON(t, s, http.MethodPost, "/healthz", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d, want 405", code)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	s := New(Config{})
	upload(t, s)

	var list []SnapshotInfo
	if code := doJSON(t, s, http.MethodGet, "/v1/snapshots", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) != 2 || list[0].Name != "new" || list[1].Name != "old" {
		t.Fatalf("unexpected list %+v", list)
	}
	if list[0].N != 5 || list[0].M != 6 || list[0].Version != 1 {
		t.Fatalf("unexpected info for new: %+v", list[0])
	}

	// Replacing a snapshot bumps its version.
	g1, _ := fig1Pair()
	var info SnapshotInfo
	if code := doJSON(t, s, http.MethodPost, "/v1/snapshots", SnapshotRequest{Name: "old", GraphJSON: g1}, &info); code != http.StatusOK {
		t.Fatalf("replace: status %d", code)
	}
	if info.Version != 2 {
		t.Fatalf("replace: version %d, want 2", info.Version)
	}
}

func TestSnapshotErrors(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"missing name", SnapshotRequest{GraphJSON: GraphJSON{N: 2}}, http.StatusBadRequest},
		{"slash in name", SnapshotRequest{Name: "a/b", GraphJSON: GraphJSON{N: 2}}, http.StatusBadRequest},
		{"self loop", SnapshotRequest{Name: "x", GraphJSON: GraphJSON{N: 2, Edges: []EdgeJSON{{0, 0, 1}}}}, http.StatusBadRequest},
		{"out of range", SnapshotRequest{Name: "x", GraphJSON: GraphJSON{N: 2, Edges: []EdgeJSON{{0, 7, 1}}}}, http.StatusBadRequest},
		{"negative n", SnapshotRequest{Name: "x", GraphJSON: GraphJSON{N: -1}}, http.StatusBadRequest},
		{"bad json", "not an object", http.StatusBadRequest},
	}
	for _, c := range cases {
		if code := doJSON(t, s, http.MethodPost, "/v1/snapshots", c.req, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	if code := doJSON(t, s, http.MethodDelete, "/v1/snapshots", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", code)
	}
}

func TestDCSAverageDegree(t *testing.T) {
	s := New(Config{})
	upload(t, s)
	var resp DCSResponse
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	r := resp.Results[0]
	wantS := []int{0, 2, 3}
	if len(r.S) != 3 || r.S[0] != 0 || r.S[1] != 2 || r.S[2] != 3 {
		t.Fatalf("S = %v, want %v", r.S, wantS)
	}
	if math.Abs(r.Density-20.0/3) > 1e-9 || math.Abs(r.TotalWeight-20) > 1e-9 {
		t.Fatalf("density %v totalweight %v, want 6.667 / 20", r.Density, r.TotalWeight)
	}
	if !r.PositiveClique || !r.Connected {
		t.Fatalf("flags %+v, want positive connected clique", r)
	}
	if resp.G1.Name != "old" || resp.G1.Version != 1 || resp.G2.Name != "new" {
		t.Fatalf("refs %+v %+v", resp.G1, resp.G2)
	}
}

func TestDCSAffinity(t *testing.T) {
	s := New(Config{})
	upload(t, s)
	var resp DCSResponse
	req := DCSRequest{Measure: "affinity", G1: "old", G2: "new"}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	r := resp.Results[0]
	if len(r.S) != 3 || r.S[0] != 0 || r.S[1] != 2 || r.S[2] != 3 {
		t.Fatalf("S = %v, want [0 2 3]", r.S)
	}
	if math.Abs(r.Affinity-2.25) > 1e-6 {
		t.Fatalf("affinity %v, want 2.25", r.Affinity)
	}
	if len(r.Weights) != len(r.S) {
		t.Fatalf("weights %v not aligned with S %v", r.Weights, r.S)
	}
	sum := 0.0
	for _, w := range r.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	if !r.PositiveClique {
		t.Fatalf("affinity result must be a positive clique (Theorem 5)")
	}
}

func TestDCSTotalWeight(t *testing.T) {
	s := New(Config{})
	upload(t, s)
	var resp DCSResponse
	req := DCSRequest{Measure: "totalweight", G1: "old", G2: "new"}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	// The DCS under average degree has W_D = 20; the total-weight objective
	// can only do better (Section VI-E: the largest subgraphs).
	if r := resp.Results[0]; r.TotalWeight < 20 {
		t.Fatalf("total weight %v, want >= 20", r.TotalWeight)
	}
}

func TestDCSRatio(t *testing.T) {
	s := New(Config{})
	tri := GraphJSON{N: 3, Edges: []EdgeJSON{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}}}
	tri3 := GraphJSON{N: 3, Edges: []EdgeJSON{{0, 1, 3}, {1, 2, 3}, {0, 2, 3}}}

	var resp DCSResponse
	req := DCSRequest{Measure: "ratio", Graph1: &tri, Graph2: &tri3}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Ratio == nil || resp.Ratio.Unbounded {
		t.Fatalf("ratio %+v, want bounded", resp.Ratio)
	}
	if resp.Ratio.Alpha < 2.9 || resp.Ratio.Alpha > 3+1e-9 {
		t.Fatalf("alpha %v, want ~3", resp.Ratio.Alpha)
	}
	if math.Abs(resp.Ratio.Density2-resp.Ratio.Alpha*resp.Ratio.Density1) > 0.5 {
		t.Fatalf("witness densities %v vs %v at alpha %v", resp.Ratio.Density2, resp.Ratio.Density1, resp.Ratio.Alpha)
	}

	// An edge present only in G2 makes the supremum unbounded (Section III-C).
	extra := GraphJSON{N: 4, Edges: append(append([]EdgeJSON{}, tri3.Edges...), EdgeJSON{0, 3, 2})}
	tri4 := GraphJSON{N: 4, Edges: tri.Edges}
	resp = DCSResponse{}
	req = DCSRequest{Measure: "ratio", Graph1: &tri4, Graph2: &extra}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Ratio == nil || !resp.Ratio.Unbounded {
		t.Fatalf("ratio %+v, want unbounded", resp.Ratio)
	}
}

// twoCliquePair plants two vertex-disjoint rising cliques, the top-k fixture.
func twoCliquePair() (g1, g2 GraphJSON) {
	g1 = GraphJSON{N: 8}
	g2 = GraphJSON{N: 8, Edges: []EdgeJSON{
		{0, 1, 5}, {0, 2, 5}, {1, 2, 5}, // strong clique
		{4, 5, 3}, {4, 6, 3}, {5, 6, 3}, // weaker clique
	}}
	return
}

func TestDCSTopK(t *testing.T) {
	s := New(Config{})
	g1, g2 := twoCliquePair()
	for _, measure := range []string{"avgdeg", "affinity"} {
		var resp DCSResponse
		req := DCSRequest{Measure: measure, Graph1: &g1, Graph2: &g2, K: 3}
		if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
			t.Fatalf("%s: status %d", measure, code)
		}
		if len(resp.Results) != 2 {
			t.Fatalf("%s: got %d results, want 2 (only two positive groups exist)", measure, len(resp.Results))
		}
		first, second := resp.Results[0], resp.Results[1]
		if len(first.S) != 3 || first.S[0] != 0 {
			t.Fatalf("%s: first result %v, want the strong clique {0,1,2}", measure, first.S)
		}
		if len(second.S) != 3 || second.S[0] != 4 {
			t.Fatalf("%s: second result %v, want the weaker clique {4,5,6}", measure, second.S)
		}
	}
}

func TestDCSAlphaQuasiContrast(t *testing.T) {
	s := New(Config{})
	// One edge doubles (2 -> 4), another only grows 1.5x (2 -> 3). With
	// alpha=1.8 only the doubling edge stays positive in GD = G2 − 1.8·G1.
	g1 := GraphJSON{N: 4, Edges: []EdgeJSON{{0, 1, 2}, {2, 3, 2}}}
	g2 := GraphJSON{N: 4, Edges: []EdgeJSON{{0, 1, 4}, {2, 3, 3}}}
	var resp DCSResponse
	req := DCSRequest{Measure: "avgdeg", Graph1: &g1, Graph2: &g2, Alpha: fp(1.8)}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	r := resp.Results[0]
	if len(r.S) != 2 || r.S[0] != 0 || r.S[1] != 1 {
		t.Fatalf("S = %v, want [0 1] (the doubling edge)", r.S)
	}
	if resp.Alpha != 1.8 {
		t.Fatalf("echoed alpha %v, want 1.8", resp.Alpha)
	}
}

// TestDCSAlphaZero is the regression test for the α = 0 decoding bug: an
// explicit 0 used to be indistinguishable from "absent" and silently ran
// with α = 1. With α = 0 the difference graph is G2 itself, so a subgraph
// that shrank from G1 to G2 must still be mined on its G2 strength alone.
func TestDCSAlphaZero(t *testing.T) {
	s := New(Config{})
	// The triangle {0,1,2} is strong in BOTH eras (barely changed); the edge
	// (3,4) is new. Under α = 1 the contrast is the new edge; under α = 0
	// (pure G2 density) the triangle wins.
	g1 := GraphJSON{N: 5, Edges: []EdgeJSON{{0, 1, 10}, {1, 2, 10}, {0, 2, 10}}}
	g2 := GraphJSON{N: 5, Edges: []EdgeJSON{{0, 1, 10}, {1, 2, 10}, {0, 2, 10}, {3, 4, 3}}}

	run := func(alpha *float64) DCSResponse {
		var resp DCSResponse
		req := DCSRequest{Measure: "avgdeg", Graph1: &g1, Graph2: &g2, Alpha: alpha}
		if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
			t.Fatalf("alpha=%v: status %d", alpha, code)
		}
		return resp
	}

	dflt := run(nil)
	if len(dflt.Results) != 1 || len(dflt.Results[0].S) != 2 || dflt.Results[0].S[0] != 3 {
		t.Fatalf("default alpha: S = %+v, want the new edge {3,4}", dflt.Results)
	}
	if dflt.Alpha != 1 {
		t.Fatalf("absent alpha echoed as %v, want the default 1", dflt.Alpha)
	}

	zero := run(fp(0))
	if len(zero.Results) != 1 {
		t.Fatalf("alpha=0: got %d results", len(zero.Results))
	}
	r := zero.Results[0]
	if len(r.S) != 3 || r.S[0] != 0 || r.S[1] != 1 || r.S[2] != 2 {
		t.Fatalf("alpha=0: S = %v, want the G2-dense triangle [0 1 2] (alpha silently defaulted to 1?)", r.S)
	}
	// Density on GD = G2: the triangle's average degree 2·30/3 = 20.
	if math.Abs(r.Density-20) > 1e-9 {
		t.Fatalf("alpha=0 density %v, want 20 (pure G2 difference graph)", r.Density)
	}

	// Explicit negative alpha still rejected.
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs",
		DCSRequest{Measure: "avgdeg", Graph1: &g1, Graph2: &g2, Alpha: fp(-1)}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative alpha: status %d, want 400", code)
	}
}

func TestDCSMixedInlineAndNamed(t *testing.T) {
	s := New(Config{})
	upload(t, s)
	_, g2 := fig1Pair()
	var resp DCSResponse
	req := DCSRequest{Measure: "avgdeg", G1: "old", Graph2: &g2}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.G2.Inline || resp.G2.Name != "" {
		t.Fatalf("g2 ref %+v, want inline", resp.G2)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].S) != 3 {
		t.Fatalf("unexpected results %+v", resp.Results)
	}
}

func TestDCSErrors(t *testing.T) {
	s := New(Config{})
	upload(t, s)
	g1, _ := fig1Pair()
	small := GraphJSON{N: 3}
	cases := []struct {
		name string
		req  DCSRequest
		want int
	}{
		{"missing measure", DCSRequest{G1: "old", G2: "new"}, http.StatusBadRequest},
		{"bad measure", DCSRequest{Measure: "modularity", G1: "old", G2: "new"}, http.StatusBadRequest},
		{"unknown snapshot", DCSRequest{Measure: "avgdeg", G1: "nope", G2: "new"}, http.StatusBadRequest},
		{"missing g2", DCSRequest{Measure: "avgdeg", G1: "old"}, http.StatusBadRequest},
		{"both name and inline", DCSRequest{Measure: "avgdeg", G1: "old", Graph1: &g1, G2: "new"}, http.StatusBadRequest},
		{"mismatched n", DCSRequest{Measure: "avgdeg", G1: "old", Graph2: &small}, http.StatusBadRequest},
		{"negative k", DCSRequest{Measure: "avgdeg", G1: "old", G2: "new", K: -1}, http.StatusBadRequest},
		{"negative alpha", DCSRequest{Measure: "avgdeg", G1: "old", G2: "new", Alpha: fp(-2)}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code := doJSON(t, s, http.MethodPost, "/v1/dcs", c.req, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	if code := doJSON(t, s, http.MethodGet, "/v1/dcs", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/dcs: status %d, want 405", code)
	}
}

func TestTopics(t *testing.T) {
	s := New(Config{})
	g1, g2 := twoCliquePair()
	for _, req := range []SnapshotRequest{
		{Name: "era1", GraphJSON: g1},
		{Name: "era2", GraphJSON: g2},
	} {
		if code := doJSON(t, s, http.MethodPost, "/v1/snapshots", req, nil); code != http.StatusOK {
			t.Fatalf("upload: status %d", code)
		}
	}

	var resp TopicsResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/topics?g1=era1&g2=era2&k=5", nil, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Direction != "emerging" || len(resp.Topics) != 2 {
		t.Fatalf("got %d %s topics, want 2 emerging", len(resp.Topics), resp.Direction)
	}
	if resp.Topics[0].Affinity < resp.Topics[1].Affinity {
		t.Fatalf("topics not sorted by affinity: %v", resp.Topics)
	}

	// Swapping direction finds the same cliques as contrasts of era1 over era2.
	var rev TopicsResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/topics?g1=era2&g2=era1&direction=disappearing", nil, &rev); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rev.Direction != "disappearing" || len(rev.Topics) != 2 {
		t.Fatalf("got %d %s topics, want 2 disappearing", len(rev.Topics), rev.Direction)
	}

	for _, bad := range []string{
		"/v1/topics",                       // missing params
		"/v1/topics?g1=era1",               // missing g2
		"/v1/topics?g1=era1&g2=nope",       // unknown snapshot
		"/v1/topics?g1=era1&g2=era2&k=0",   // bad k
		"/v1/topics?g1=era1&g2=era2&k=bad", // unparsable k
		"/v1/topics?g1=era1&g2=era2&direction=sideways",
	} {
		if code := doJSON(t, s, http.MethodGet, bad, nil, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, code)
		}
	}
	if code := doJSON(t, s, http.MethodPost, "/v1/topics?g1=era1&g2=era2", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/topics: status %d, want 405", code)
	}
}

func TestRequestLimits(t *testing.T) {
	s := New(Config{MaxVertices: 100, MaxBodyBytes: 512})
	huge := GraphJSON{N: 1000}
	req := DCSRequest{Measure: "avgdeg", Graph1: &huge, Graph2: &huge}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, nil); code != http.StatusBadRequest {
		t.Errorf("oversized inline n: status %d, want 400", code)
	}
	if code := doJSON(t, s, http.MethodPost, "/v1/snapshots", SnapshotRequest{Name: "x", GraphJSON: huge}, nil); code != http.StatusBadRequest {
		t.Errorf("oversized snapshot n: status %d, want 400", code)
	}
	fat := GraphJSON{N: 100}
	for i := 1; i < 60; i++ {
		fat.Edges = append(fat.Edges, EdgeJSON{0, i, 1})
	}
	if code := doJSON(t, s, http.MethodPost, "/v1/snapshots", SnapshotRequest{Name: "x", GraphJSON: fat}, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", code)
	}
	// Operator preloads bypass MaxVertices by design.
	s.Store().Put("big", mustBuild(t, &huge))
	small := GraphJSON{N: 1000}
	req = DCSRequest{Measure: "avgdeg", G1: "big", Graph2: &small}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, nil); code != http.StatusBadRequest {
		t.Errorf("inline n above limit even when matching a preload: status %d, want 400", code)
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := New(Config{PoolSize: 1, QueueTimeout: 20 * time.Millisecond})
	upload(t, s)
	// Occupy the only slot so the request cannot be admitted in time.
	if err := s.pool.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.pool.release()
	req := DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	// Validation failures are rejected before admission, so a full pool does
	// not delay them.
	bad := DCSRequest{Measure: "avgdeg", G1: "nope", G2: "new"}
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
}
