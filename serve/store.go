package serve

import (
	"sort"
	"sync"
	"time"

	dcs "github.com/dcslib/dcs"
)

// Snapshot is one registered graph version. Graphs are immutable, so a
// Snapshot handed out by the store stays valid (and race-free) even after the
// name is replaced by a newer version.
type Snapshot struct {
	Name      string
	Version   int
	Graph     *dcs.Graph
	UpdatedAt time.Time
}

// Info summarizes the snapshot.
func (s *Snapshot) Info() SnapshotInfo {
	return SnapshotInfo{
		Name:        s.Name,
		Version:     s.Version,
		N:           s.Graph.N(),
		M:           s.Graph.M(),
		TotalWeight: s.Graph.TotalWeight(),
		UpdatedAt:   s.UpdatedAt,
	}
}

// Store is a concurrent in-memory registry of named, versioned graph
// snapshots. Put replaces a name atomically and bumps its version; readers
// that already hold a Snapshot keep computing against the version they
// resolved.
type Store struct {
	mu    sync.RWMutex
	snaps map[string]*Snapshot
	// lastVersion remembers the newest version ever assigned to a name and
	// survives Delete: a name deleted and re-created must NOT restart at
	// version 1, or the diff cache's (name, version) identity is reused by a
	// different graph — an in-flight build against the old graph could then
	// pass the put-veto's currency check and pin a stale difference (ABA).
	lastVersion map[string]int
	// onReplace, when set, is called (outside the store lock) after a name's
	// version is bumped. The Server wires it to the difference-graph cache's
	// purge, so replacements through any path — the HTTP handler or an
	// embedder calling Store().Put directly — drop the dead cache entries.
	onReplace func(name string)
	// persist, when set, mirrors every Put and Delete to durable storage
	// (serve/persist.go), again outside the lock and through any mutation
	// path. Restore and SeedVersion — the recovery entry points — do NOT
	// fire it: recovery must not rewrite what it just read.
	persist persistHook
}

// persistHook receives store mutations for write-through mirroring. Errors
// propagate to Put/Delete so a caller is never told a write is durable when
// the disk refused it.
type persistHook interface {
	// saveSnapshot durably records s; stale calls (a version older than the
	// newest one saved for the name) are discarded by the implementation,
	// so out-of-order delivery from concurrent Puts is harmless.
	saveSnapshot(s *Snapshot) error
	// deleteSnapshot durably records that name is gone while retaining its
	// version counter (lastVersion), so a re-created name continues the
	// monotonic sequence even across a restart.
	deleteSnapshot(name string, lastVersion int) error
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{snaps: make(map[string]*Snapshot), lastVersion: make(map[string]int)}
}

// Put registers g under name, replacing any previous version, and returns
// the stored snapshot's info. Versions are monotonic per name even across
// Delete (see lastVersion). Names containing '/' cannot be addressed by
// DELETE /v1/snapshots/{name}; the HTTP upload path and dcsd -load reject
// them, and embedders calling Put directly should too.
//
// The error is always nil on an in-memory store. On a durable store
// (serve.Open) it reports a failed write-through mirror: the in-memory
// registry IS updated — readers see the new version — but the disk does
// not have it, so a restart would serve the previous one.
func (st *Store) Put(name string, g *dcs.Graph) (SnapshotInfo, error) {
	st.mu.Lock()
	version := st.lastVersion[name] + 1
	st.lastVersion[name] = version
	s := &Snapshot{Name: name, Version: version, Graph: g, UpdatedAt: time.Now()}
	st.snaps[name] = s
	info := s.Info()
	onReplace := st.onReplace
	persist := st.persist
	st.mu.Unlock()
	// Outside the lock: the hook takes the cache lock, which itself reads the
	// store (cache.mu → store.mu); calling under store.mu would invert that
	// order. The store commit above still strictly precedes the purge, which
	// is what the cache's put-veto protocol relies on.
	var perr error
	if persist != nil {
		perr = persist.saveSnapshot(s)
	}
	if version > 1 && onReplace != nil {
		onReplace(name)
	}
	return info, perr
}

// Delete removes the named snapshot, reporting whether it was registered.
// Readers that already resolved the snapshot keep computing against it (the
// graph is immutable); the onReplace hook fires so its cached difference
// graphs are purged rather than pinned until LRU eviction — the same
// commit-then-purge ordering as Put, so the cache's put-veto protocol holds
// (snapshotCurrent is false the moment the delete commits). The name's
// version counter is retained, so a later re-creation continues the version
// sequence instead of minting a second "version 1" with different edges.
// The error mirrors Put's: a durable store failed to record the deletion on
// disk (the in-memory removal stands; a restart would resurrect the name).
func (st *Store) Delete(name string) (bool, error) {
	st.mu.Lock()
	_, ok := st.snaps[name]
	if ok {
		delete(st.snaps, name)
	}
	lastVersion := st.lastVersion[name]
	onReplace := st.onReplace
	persist := st.persist
	st.mu.Unlock()
	var perr error
	if ok && persist != nil {
		perr = persist.deleteSnapshot(name, lastVersion)
	}
	if ok && onReplace != nil {
		onReplace(name)
	}
	return ok, perr
}

// Restore inserts a recovered snapshot with its persisted version, seeding
// the monotonic version counter, without firing the replace or persist
// hooks — it is the boot-time inverse of the write-through mirror, not a
// new mutation. An existing same-name snapshot with an equal or newer
// version wins; the restore is then dropped.
func (st *Store) Restore(s *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.snaps[s.Name]; ok && cur.Version >= s.Version {
		return
	}
	st.snaps[s.Name] = s
	if st.lastVersion[s.Name] < s.Version {
		st.lastVersion[s.Name] = s.Version
	}
}

// SeedVersion raises name's version counter to at least v without
// registering a snapshot — used when recovery finds a tombstone, so a
// deleted name re-created after a restart continues its version sequence
// (the diff cache's (name, version) ABA protection relies on it).
func (st *Store) SeedVersion(name string, v int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.lastVersion[name] < v {
		st.lastVersion[name] = v
	}
}

// Get resolves a name to its current snapshot.
func (st *Store) Get(name string) (*Snapshot, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.snaps[name]
	return s, ok
}

// Len reports how many names are registered.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.snaps)
}

// List returns the infos of all snapshots, sorted by name.
func (st *Store) List() []SnapshotInfo {
	st.mu.RLock()
	infos := make([]SnapshotInfo, 0, len(st.snaps))
	for _, s := range st.snaps {
		infos = append(infos, s.Info())
	}
	st.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
