package serve

import (
	"sort"
	"sync"
	"time"

	dcs "github.com/dcslib/dcs"
)

// Snapshot is one registered graph version. Graphs are immutable, so a
// Snapshot handed out by the store stays valid (and race-free) even after the
// name is replaced by a newer version.
type Snapshot struct {
	Name      string
	Version   int
	Graph     *dcs.Graph
	UpdatedAt time.Time
}

// Info summarizes the snapshot.
func (s *Snapshot) Info() SnapshotInfo {
	return SnapshotInfo{
		Name:        s.Name,
		Version:     s.Version,
		N:           s.Graph.N(),
		M:           s.Graph.M(),
		TotalWeight: s.Graph.TotalWeight(),
		UpdatedAt:   s.UpdatedAt,
	}
}

// Store is a concurrent in-memory registry of named, versioned graph
// snapshots. Put replaces a name atomically and bumps its version; readers
// that already hold a Snapshot keep computing against the version they
// resolved.
type Store struct {
	mu    sync.RWMutex
	snaps map[string]*Snapshot
	// lastVersion remembers the newest version ever assigned to a name and
	// survives Delete: a name deleted and re-created must NOT restart at
	// version 1, or the diff cache's (name, version) identity is reused by a
	// different graph — an in-flight build against the old graph could then
	// pass the put-veto's currency check and pin a stale difference (ABA).
	lastVersion map[string]int
	// onReplace, when set, is called (outside the store lock) after a name's
	// version is bumped. The Server wires it to the difference-graph cache's
	// purge, so replacements through any path — the HTTP handler or an
	// embedder calling Store().Put directly — drop the dead cache entries.
	onReplace func(name string)
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{snaps: make(map[string]*Snapshot), lastVersion: make(map[string]int)}
}

// Put registers g under name, replacing any previous version, and returns
// the stored snapshot's info. Versions are monotonic per name even across
// Delete (see lastVersion). Names containing '/' cannot be addressed by
// DELETE /v1/snapshots/{name}; the HTTP upload path and dcsd -load reject
// them, and embedders calling Put directly should too.
func (st *Store) Put(name string, g *dcs.Graph) SnapshotInfo {
	st.mu.Lock()
	version := st.lastVersion[name] + 1
	st.lastVersion[name] = version
	s := &Snapshot{Name: name, Version: version, Graph: g, UpdatedAt: time.Now()}
	st.snaps[name] = s
	info := s.Info()
	onReplace := st.onReplace
	st.mu.Unlock()
	// Outside the lock: the hook takes the cache lock, which itself reads the
	// store (cache.mu → store.mu); calling under store.mu would invert that
	// order. The store commit above still strictly precedes the purge, which
	// is what the cache's put-veto protocol relies on.
	if version > 1 && onReplace != nil {
		onReplace(name)
	}
	return info
}

// Delete removes the named snapshot, reporting whether it was registered.
// Readers that already resolved the snapshot keep computing against it (the
// graph is immutable); the onReplace hook fires so its cached difference
// graphs are purged rather than pinned until LRU eviction — the same
// commit-then-purge ordering as Put, so the cache's put-veto protocol holds
// (snapshotCurrent is false the moment the delete commits). The name's
// version counter is retained, so a later re-creation continues the version
// sequence instead of minting a second "version 1" with different edges.
func (st *Store) Delete(name string) bool {
	st.mu.Lock()
	_, ok := st.snaps[name]
	if ok {
		delete(st.snaps, name)
	}
	onReplace := st.onReplace
	st.mu.Unlock()
	if ok && onReplace != nil {
		onReplace(name)
	}
	return ok
}

// Get resolves a name to its current snapshot.
func (st *Store) Get(name string) (*Snapshot, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.snaps[name]
	return s, ok
}

// Len reports how many names are registered.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.snaps)
}

// List returns the infos of all snapshots, sorted by name.
func (st *Store) List() []SnapshotInfo {
	st.mu.RLock()
	infos := make([]SnapshotInfo, 0, len(st.snaps))
	for _, s := range st.snaps {
		infos = append(infos, s.Info())
	}
	st.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
