package serve

import (
	"sort"
	"sync"
	"time"

	dcs "github.com/dcslib/dcs"
)

// Snapshot is one registered graph version. Graphs are immutable, so a
// Snapshot handed out by the store stays valid (and race-free) even after the
// name is replaced by a newer version.
type Snapshot struct {
	Name      string
	Version   int
	Graph     *dcs.Graph
	UpdatedAt time.Time
}

// Info summarizes the snapshot.
func (s *Snapshot) Info() SnapshotInfo {
	return SnapshotInfo{
		Name:        s.Name,
		Version:     s.Version,
		N:           s.Graph.N(),
		M:           s.Graph.M(),
		TotalWeight: s.Graph.TotalWeight(),
		UpdatedAt:   s.UpdatedAt,
	}
}

// Store is a concurrent in-memory registry of named, versioned graph
// snapshots. Put replaces a name atomically and bumps its version; readers
// that already hold a Snapshot keep computing against the version they
// resolved.
type Store struct {
	mu    sync.RWMutex
	snaps map[string]*Snapshot
	// onReplace, when set, is called (outside the store lock) after a name's
	// version is bumped. The Server wires it to the difference-graph cache's
	// purge, so replacements through any path — the HTTP handler or an
	// embedder calling Store().Put directly — drop the dead cache entries.
	onReplace func(name string)
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{snaps: make(map[string]*Snapshot)}
}

// Put registers g under name, replacing any previous version, and returns
// the stored snapshot's info.
func (st *Store) Put(name string, g *dcs.Graph) SnapshotInfo {
	st.mu.Lock()
	version := 1
	if prev, ok := st.snaps[name]; ok {
		version = prev.Version + 1
	}
	s := &Snapshot{Name: name, Version: version, Graph: g, UpdatedAt: time.Now()}
	st.snaps[name] = s
	info := s.Info()
	onReplace := st.onReplace
	st.mu.Unlock()
	// Outside the lock: the hook takes the cache lock, which itself reads the
	// store (cache.mu → store.mu); calling under store.mu would invert that
	// order. The store commit above still strictly precedes the purge, which
	// is what the cache's put-veto protocol relies on.
	if version > 1 && onReplace != nil {
		onReplace(name)
	}
	return info
}

// Get resolves a name to its current snapshot.
func (st *Store) Get(name string) (*Snapshot, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.snaps[name]
	return s, ok
}

// Len reports how many names are registered.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.snaps)
}

// List returns the infos of all snapshots, sorted by name.
func (st *Store) List() []SnapshotInfo {
	st.mu.RLock()
	infos := make([]SnapshotInfo, 0, len(st.snaps))
	for _, s := range st.snaps {
		infos = append(infos, s.Info())
	}
	st.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
