package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	dcs "github.com/dcslib/dcs"
)

// Snapshot is one registered graph version. Graphs are immutable, so a
// Snapshot handed out by the store stays valid (and race-free) even after the
// name is replaced by a newer version. The graph itself may or may not be
// resident: on a durable server it is demoted to its on-disk v2 file once
// persisted and re-opened (memory-mapped) on demand through the server's
// memory budget — always address it through Acquire.
type Snapshot struct {
	Name      string
	Version   int
	UpdatedAt time.Time

	// Graph metadata, valid whether or not the graph is resident, so Info
	// and the snapshot listing never force a cold snapshot back into memory.
	n  int
	m  int
	tw float64

	// heap is the resident graph; nil once the snapshot has been demoted to
	// its durable file (it is then served through mem). Atomic because
	// demotion happens after the snapshot is published to readers.
	heap atomic.Pointer[dcs.Graph]
	// mem serves demoted snapshots from disk; nil on an in-memory server,
	// where heap is never cleared.
	mem *memoryManager
}

// newSnapshot wraps a resident graph.
func newSnapshot(name string, version int, g *dcs.Graph, at time.Time) *Snapshot {
	s := &Snapshot{Name: name, Version: version, UpdatedAt: at,
		n: g.N(), m: g.M(), tw: g.TotalWeight()}
	s.heap.Store(g)
	return s
}

// newLazySnapshot describes a graph that lives in a registered (mem) file
// and is opened on first Acquire — the boot path of a durable server, which
// verifies file checksums but does not load graphs.
func newLazySnapshot(name string, version int, at time.Time, n, m int, tw float64, mem *memoryManager) *Snapshot {
	return &Snapshot{Name: name, Version: version, UpdatedAt: at, n: n, m: m, tw: tw, mem: mem}
}

// Acquire returns the snapshot's graph plus a release func the caller must
// invoke exactly once when done reading it. While unreleased the graph is
// pinned: the memory budget cannot unmap it. On an in-memory server (and for
// not-yet-demoted snapshots) the graph is resident and release is a no-op;
// a demoted snapshot is opened (memory-mapped) on demand, and Acquire fails
// if the version was deleted or its file cannot be opened.
func (s *Snapshot) Acquire() (*dcs.Graph, func(), error) {
	if g := s.heap.Load(); g != nil {
		return g, func() {}, nil
	}
	return s.mem.acquire(snapID{s.Name, s.Version})
}

// demote drops the resident graph in favor of the registered on-disk handle.
// Called only after the file is durable and the handle registered, so a
// racing Acquire sees either the heap graph or a servable handle.
func (s *Snapshot) demote(mem *memoryManager) {
	s.mem = mem
	s.heap.Store(nil)
}

// Info summarizes the snapshot from its cached metadata; it never touches
// the graph, so listing snapshots keeps cold ones cold.
func (s *Snapshot) Info() SnapshotInfo {
	return SnapshotInfo{
		Name:        s.Name,
		Version:     s.Version,
		N:           s.n,
		M:           s.m,
		TotalWeight: s.tw,
		UpdatedAt:   s.UpdatedAt,
	}
}

// Store is a concurrent in-memory registry of named, versioned graph
// snapshots. Put replaces a name atomically and bumps its version; readers
// that already hold a Snapshot keep computing against the version they
// resolved.
type Store struct {
	mu    sync.RWMutex
	snaps map[string]*Snapshot // guarded by mu
	// guarded by mu.
	// lastVersion remembers the newest version ever assigned to a name and
	// survives Delete: a name deleted and re-created must NOT restart at
	// version 1, or the diff cache's (name, version) identity is reused by a
	// different graph — an in-flight build against the old graph could then
	// pass the put-veto's currency check and pin a stale difference (ABA).
	lastVersion map[string]int
	// onReplace, when set, is called (outside the store lock) after a name's
	// version is bumped. The Server wires it to the difference-graph cache's
	// purge, so replacements through any path — the HTTP handler or an
	// embedder calling Store().Put directly — drop the dead cache entries.
	onReplace func(name string)
	// persist, when set, mirrors every Put and Delete to durable storage
	// (serve/persist.go), again outside the lock and through any mutation
	// path. Restore and SeedVersion — the recovery entry points — do NOT
	// fire it: recovery must not rewrite what it just read.
	persist persistHook
	// mem, when set (durable servers), is the memory budget: snapshots are
	// demoted to their durable file after each successful Put mirror, and
	// Delete/replace invalidate the dead version's handle so a stale mapping
	// can never serve a re-created name.
	mem *memoryManager
}

// persistHook receives store mutations for write-through mirroring. Errors
// propagate to Put/Delete so a caller is never told a write is durable when
// the disk refused it.
type persistHook interface {
	// saveSnapshot durably records s (whose graph is g) and returns the path
	// of the committed graph file; stale calls (a version older than the
	// newest one saved for the name) are discarded by the implementation and
	// return "", so out-of-order delivery from concurrent Puts is harmless.
	saveSnapshot(s *Snapshot, g *dcs.Graph) (path string, err error)
	// deleteSnapshot durably records that name is gone while retaining its
	// version counter (lastVersion), so a re-created name continues the
	// monotonic sequence even across a restart.
	deleteSnapshot(name string, lastVersion int) error
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{snaps: make(map[string]*Snapshot), lastVersion: make(map[string]int)}
}

// Put registers g under name, replacing any previous version, and returns
// the stored snapshot's info. Versions are monotonic per name even across
// Delete (see lastVersion). Names containing '/' cannot be addressed by
// DELETE /v1/snapshots/{name}; the HTTP upload path and dcsd -load reject
// them, and embedders calling Put directly should too.
//
// The error is always nil on an in-memory store. On a durable store
// (serve.Open) it reports a failed write-through mirror: the in-memory
// registry IS updated — readers see the new version — but the disk does
// not have it, so a restart would serve the previous one. After a
// successful mirror the snapshot is demoted: its heap graph is dropped and
// later reads memory-map the durable file under the server's budget.
func (st *Store) Put(name string, g *dcs.Graph) (SnapshotInfo, error) {
	st.mu.Lock()
	version := st.lastVersion[name] + 1
	st.lastVersion[name] = version
	prev := st.snaps[name]
	s := newSnapshot(name, version, g, time.Now())
	st.snaps[name] = s
	info := s.Info()
	onReplace := st.onReplace
	persist := st.persist
	mem := st.mem
	st.mu.Unlock()
	// Outside the lock: the hook takes the cache lock, which itself reads the
	// store (cache.mu → store.mu); calling under store.mu would invert that
	// order. The store commit above still strictly precedes the purge, which
	// is what the cache's put-veto protocol relies on.
	var perr error
	if persist != nil {
		var path string
		path, perr = persist.saveSnapshot(s, g)
		if perr == nil && path != "" && mem != nil {
			mem.register(snapID{name, version}, path)
			s.demote(mem)
		}
	}
	if mem != nil && prev != nil {
		// The replaced version can never be resolved again; drop (or doom)
		// its mapping so replacement frees memory as reliably as Delete.
		mem.invalidate(snapID{prev.Name, prev.Version})
	}
	if version > 1 && onReplace != nil {
		onReplace(name)
	}
	return info, perr
}

// Delete removes the named snapshot, reporting whether it was registered.
// Readers that already resolved the snapshot keep computing against it (the
// graph is immutable, and pinned mappings survive until released); the
// onReplace hook fires so its cached difference graphs are purged rather
// than pinned until LRU eviction — the same commit-then-purge ordering as
// Put, so the cache's put-veto protocol holds (snapshotCurrent is false the
// moment the delete commits). The deleted version's mapped handle is
// invalidated by identity, so a later re-creation of the name (which mints a
// fresh version) can never be served from the stale mapping. The name's
// version counter is retained, so a re-creation continues the version
// sequence instead of minting a second "version 1" with different edges.
// The error mirrors Put's: a durable store failed to record the deletion on
// disk (the in-memory removal stands; a restart would resurrect the name).
func (st *Store) Delete(name string) (bool, error) {
	st.mu.Lock()
	prev, ok := st.snaps[name]
	if ok {
		delete(st.snaps, name)
	}
	lastVersion := st.lastVersion[name]
	onReplace := st.onReplace
	persist := st.persist
	mem := st.mem
	st.mu.Unlock()
	var perr error
	if ok && persist != nil {
		perr = persist.deleteSnapshot(name, lastVersion)
	}
	if ok && mem != nil {
		mem.invalidate(snapID{prev.Name, prev.Version})
	}
	if ok && onReplace != nil {
		onReplace(name)
	}
	return ok, perr
}

// Restore inserts a recovered snapshot with its persisted version, seeding
// the monotonic version counter, without firing the replace or persist
// hooks — it is the boot-time inverse of the write-through mirror, not a
// new mutation. An existing same-name snapshot with an equal or newer
// version wins; the restore is then dropped.
func (st *Store) Restore(s *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.snaps[s.Name]; ok && cur.Version >= s.Version {
		return
	}
	st.snaps[s.Name] = s
	if st.lastVersion[s.Name] < s.Version {
		st.lastVersion[s.Name] = s.Version
	}
}

// SeedVersion raises name's version counter to at least v without
// registering a snapshot — used when recovery finds a tombstone, so a
// deleted name re-created after a restart continues its version sequence
// (the diff cache's (name, version) ABA protection relies on it).
func (st *Store) SeedVersion(name string, v int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.lastVersion[name] < v {
		st.lastVersion[name] = v
	}
}

// Get resolves a name to its current snapshot.
func (st *Store) Get(name string) (*Snapshot, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.snaps[name]
	return s, ok
}

// Len reports how many names are registered.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.snaps)
}

// List returns the infos of all snapshots, sorted by name.
func (st *Store) List() []SnapshotInfo {
	st.mu.RLock()
	infos := make([]SnapshotInfo, 0, len(st.snaps))
	for _, s := range st.snaps {
		infos = append(infos, s.Info())
	}
	st.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
