// Package serve implements dcsd, a long-running HTTP service for online
// density-contrast mining: named, versioned graph snapshots are kept in a
// concurrent in-memory registry, and mining requests — any of the four
// contrast measures of the paper and its baselines — run on a bounded worker
// pool so a burst of expensive queries cannot exhaust the host.
//
// Endpoints (all request/response bodies are JSON):
//
//	POST /v1/snapshots   upload or replace a named weighted graph
//	GET  /v1/snapshots   list the registered snapshots
//	DELETE /v1/snapshots/{name}  remove a snapshot and purge its cached
//	                     difference graphs (404 on an unknown name)
//	POST /v1/dcs         mine one contrast: measure avgdeg | affinity |
//	                     totalweight | ratio, against two named snapshots or
//	                     inline edge lists, optional top-k and alpha
//	GET  /v1/topics      the TopContrastCliques pipeline over two named
//	                     snapshots (the paper's emerging/disappearing topics)
//	POST /v1/jobs        submit a /v1/dcs request as an asynchronous job;
//	                     returns a job id immediately
//	GET  /v1/jobs        list jobs; GET /v1/jobs/{id} polls one job's status
//	                     (queued | running | done | cancelled | failed) and
//	                     its result once finished
//	DELETE /v1/jobs/{id} cancel a queued or running job; a running solver
//	                     stops within one checkpoint interval and its
//	                     best-so-far partial result is kept
//	POST /v1/watches     register a named streaming anomaly watch: an EWMA
//	                     expectation tracker (package evolve) served over
//	                     HTTP; GET lists, DELETE /v1/watches/{name} removes
//	POST /v1/watches/{name}/observe  feed one stream tick — a full snapshot
//	                     or an edge-delta list against the previous
//	                     observation — mine the DCS of the observation vs
//	                     the maintained expectation, fold it in, and return
//	                     (plus retain) the anomaly report; delta ticks run
//	                     the incremental engine (the difference graph is
//	                     maintained in O(k) per k-edge delta and mining
//	                     warm-starts from the previous subgraph, re-solving
//	                     from scratch every resync_every ticks)
//	GET  /v1/watches/{name}/reports  the watch's bounded ring of recent
//	                     reports, oldest first
//	GET  /healthz        liveness, snapshot count, in-flight and queued
//	                     counts, job and watch statistics
//
// Mining runs under the request's context plus the configured SolveTimeout:
// a client disconnect or an expired deadline interrupts the solver at its
// next cancellation checkpoint, frees the pool slot, and (for deadlines) the
// response carries the best-so-far partial result with "interrupted": true.
//
// A Server built with Open (dcsd -data) is durable: snapshots and their
// monotonic version counters mirror write-through to a data directory and
// watch state is checkpointed, so a restart recovers everything instead of
// booting empty — see serve/persist.go and the PersistStats counters on
// /healthz.
//
// The service exposes exactly the public API of package dcs; see README.md
// for curl examples and cmd/dcsd for the binary.
package serve

import (
	"fmt"
	"math"
	"time"

	dcs "github.com/dcslib/dcs"
)

// EdgeJSON is one undirected weighted edge of a request or response graph.
type EdgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

// GraphJSON is an inline graph: a vertex count and an edge list. Parallel
// edges merge by summing, as in dcs.Builder.
type GraphJSON struct {
	N     int        `json:"n"`
	Edges []EdgeJSON `json:"edges"`
}

// Build validates the edge list and constructs the immutable graph.
func (g *GraphJSON) Build() (*dcs.Graph, error) {
	if g.N < 0 {
		return nil, fmt.Errorf("negative vertex count %d", g.N)
	}
	b := dcs.NewBuilder(g.N)
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
			return nil, fmt.Errorf("edge %d: (%d,%d) out of range [0,%d)", i, e.U, e.V, g.N)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("edge %d: self-loop on vertex %d", i, e.U)
		}
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return nil, fmt.Errorf("edge %d: non-finite weight", i)
		}
		b.AddEdge(e.U, e.V, e.W)
	}
	return b.Build(), nil
}

// SnapshotRequest is the body of POST /v1/snapshots.
type SnapshotRequest struct {
	Name string `json:"name"`
	GraphJSON
}

// SnapshotInfo describes one registered snapshot; POST /v1/snapshots returns
// the info of the stored (possibly replaced) snapshot, GET /v1/snapshots
// returns a list sorted by name.
type SnapshotInfo struct {
	Name        string    `json:"name"`
	Version     int       `json:"version"`
	N           int       `json:"n"`
	M           int       `json:"m"`
	TotalWeight float64   `json:"total_weight"`
	UpdatedAt   time.Time `json:"updated_at"`
}

// DCSRequest is the body of POST /v1/dcs. The two input graphs are given
// either by snapshot name (G1, G2) or inline (Graph1, Graph2); the two styles
// may be mixed. Contrast direction follows the library convention: the result
// is denser in the second graph than in the first.
type DCSRequest struct {
	// Measure selects the objective: "avgdeg" (ρ2−ρ1, DCSGreedy),
	// "affinity" (xᵀA2x − xᵀA1x, NewSEA), "totalweight" (W2−W1, the EgoScan
	// baseline objective) or "ratio" (largest α with ρ2 ≥ α·ρ1).
	Measure string `json:"measure"`
	// G1, G2 name registered snapshots.
	G1 string `json:"g1,omitempty"`
	G2 string `json:"g2,omitempty"`
	// Graph1, Graph2 are inline alternatives to G1/G2.
	Graph1 *GraphJSON `json:"graph1,omitempty"`
	Graph2 *GraphJSON `json:"graph2,omitempty"`
	// K asks for up to K vertex-disjoint results (avgdeg and affinity only).
	// 0 or 1 means the single best.
	K int `json:"k,omitempty"`
	// Alpha generalizes the difference graph to GD = G2 − α·G1 (the
	// α-quasi-contrast of Section III-D). Absent means 1; an explicit 0 is
	// honored and mines the pure G2 difference graph (GD = G2). Ignored by
	// measure "ratio", which searches for the best α itself.
	Alpha *float64 `json:"alpha,omitempty"`
	// Parallelism asks for this many worker goroutines inside the solve.
	// Absent or 0 means the server default (Config.Parallelism); requests
	// beyond the server cap (Config.MaxParallelism) are clamped, never
	// rejected — the response echoes the degree actually used. Results are
	// identical at every degree; negative values are a 400.
	Parallelism int `json:"parallelism,omitempty"`
}

// SubgraphJSON is one mined contrast subgraph.
type SubgraphJSON struct {
	// S is the vertex set, increasing order.
	S []int `json:"s"`
	// Density is ρ_D(S), the average-degree difference.
	Density float64 `json:"density"`
	// TotalWeight is W_D(S), the total edge-weight difference.
	TotalWeight float64 `json:"total_weight"`
	// EdgeDensity is W_D(S)/|S|².
	EdgeDensity float64 `json:"edge_density"`
	// Affinity is xᵀDx (affinity measure only).
	Affinity float64 `json:"affinity,omitempty"`
	// Weights are the simplex weights aligned with S (affinity measure only).
	Weights []float64 `json:"weights,omitempty"`
	// ApproxRatio is DCSGreedy's data-dependent ratio β (avgdeg only).
	ApproxRatio    float64 `json:"approx_ratio,omitempty"`
	PositiveClique bool    `json:"positive_clique"`
	Connected      bool    `json:"connected"`
}

// RatioJSON is the outcome of measure "ratio". When some edge exists only in
// G2 the supremum is unbounded (Section III-C); Unbounded is then true and
// Alpha is omitted, with S the heaviest G2-only edge.
type RatioJSON struct {
	Alpha     float64 `json:"alpha"`
	Unbounded bool    `json:"unbounded,omitempty"`
	S         []int   `json:"s"`
	Density1  float64 `json:"density1"`
	Density2  float64 `json:"density2"`
}

// SnapshotRef records which snapshot version a response was computed
// against, so callers can detect mid-flight replacement.
type SnapshotRef struct {
	Name    string `json:"name,omitempty"`
	Version int    `json:"version,omitempty"`
	Inline  bool   `json:"inline,omitempty"`
}

// DCSResponse is the body returned by POST /v1/dcs.
type DCSResponse struct {
	Measure string      `json:"measure"`
	G1      SnapshotRef `json:"g1"`
	G2      SnapshotRef `json:"g2"`
	Alpha   float64     `json:"alpha,omitempty"`
	// Interrupted reports that the solve was cut short — the SolveTimeout
	// expired or the job was cancelled mid-run — and the fields below carry
	// the solver's best-so-far partial result instead of the full answer.
	Interrupted bool           `json:"interrupted,omitempty"`
	Results     []SubgraphJSON `json:"results,omitempty"`
	Ratio       *RatioJSON     `json:"ratio,omitempty"`
	// Parallelism is the worker-goroutine degree the solve actually used:
	// the requested (or server-default) degree clamped to the server cap,
	// never below 1. A request above the cap is thus answered, not errored —
	// this field is how the client learns it was clamped.
	Parallelism int     `json:"parallelism"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// TopicsResponse is the body returned by GET /v1/topics.
type TopicsResponse struct {
	G1        SnapshotRef `json:"g1"`
	G2        SnapshotRef `json:"g2"`
	Direction string      `json:"direction"`
	// Interrupted reports a partial topic list (SolveTimeout expired).
	Interrupted bool           `json:"interrupted,omitempty"`
	Topics      []SubgraphJSON `json:"topics"`
	ElapsedMS   float64        `json:"elapsed_ms"`
}

// JobInfo describes one asynchronous mining job. POST /v1/jobs returns the
// fresh job (status "queued"); GET /v1/jobs/{id} returns the current state,
// including the result once the job is done or cancelled mid-run.
type JobInfo struct {
	ID string `json:"id"`
	// Status is queued | running | done | cancelled | failed.
	Status     string     `json:"status"`
	Measure    string     `json:"measure"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Result is present once the job finished; a job cancelled mid-run keeps
	// its best-so-far partial result with Result.Interrupted set.
	Result *DCSResponse `json:"result,omitempty"`
}

// JobStats summarizes the job registry for /healthz.
type JobStats struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`
	// Retained counts the finished jobs currently kept for polling (bounded
	// by Config.JobRetention; Done/Cancelled/Failed keep counting evicted
	// ones).
	Retained int `json:"retained"`
}

// WatchRequest is the body of POST /v1/watches: it registers a named
// streaming anomaly watch (an EWMA tracker served over HTTP).
type WatchRequest struct {
	Name string `json:"name"`
	// N is the fixed vertex count every observation must match.
	N int `json:"n"`
	// Lambda is the EWMA decay in (0, 1]; 0 means the default 0.3.
	Lambda float64 `json:"lambda,omitempty"`
	// Measure selects the mining objective per observation: "avgdeg"
	// (default) or "affinity" (small positive-clique anomalies).
	Measure string `json:"measure,omitempty"`
	// MinDensity suppresses reports whose contrast is at or below it.
	MinDensity float64 `json:"min_density,omitempty"`
	// SolveTimeoutMS bounds one observation's mining compute; an expired
	// solve reports its best-so-far partial subgraph with "interrupted".
	// 0 falls back to the server's -timeout. When both are set the smaller
	// wins.
	SolveTimeoutMS float64 `json:"solve_timeout_ms,omitempty"`
	// Reports overrides the per-watch report-ring capacity
	// (Config.WatchReports); 0 means the server default.
	Reports int `json:"reports,omitempty"`
	// ResyncEvery overrides the scratch re-solve interval for delta
	// observations: every K-th delta tick mines the full difference graph
	// from scratch instead of running the incremental warm-started solve.
	// 0 means the server default (Config.WatchResync, else the evolve
	// package default of 32); 1 disables incremental mining outright.
	ResyncEvery int `json:"resync_every,omitempty"`
}

// WatchInfo describes one registered watch.
type WatchInfo struct {
	Name           string  `json:"name"`
	N              int     `json:"n"`
	Lambda         float64 `json:"lambda"`
	Measure        string  `json:"measure"`
	MinDensity     float64 `json:"min_density"`
	SolveTimeoutMS float64 `json:"solve_timeout_ms,omitempty"`
	ReportCap      int     `json:"report_cap"`
	// ResyncEvery is the watch's effective scratch re-solve interval for
	// delta observations (defaults applied).
	ResyncEvery int       `json:"resync_every"`
	Step        int       `json:"step"`
	Anomalies   int       `json:"anomalies"`
	CreatedAt   time.Time `json:"created_at"`
	// LastObserved is the wall time of the newest observation, if any.
	LastObserved *time.Time `json:"last_observed,omitempty"`
}

// WatchObserveRequest is the body of POST /v1/watches/{name}/observe: one
// stream tick, either a full snapshot or an edge-delta list against the
// previous observation (each delta entry sets edge (u,v) to w; w = 0 removes
// it; the first observation's delta base is the empty graph).
type WatchObserveRequest struct {
	Graph *GraphJSON `json:"graph,omitempty"`
	Delta []EdgeJSON `json:"delta,omitempty"`
}

// WatchReport is one observation's anomaly finding, returned by the observe
// call and retained in the watch's bounded report ring.
type WatchReport struct {
	Step      int  `json:"step"`
	Anomalous bool `json:"anomalous"`
	// S is the anomalous vertex set (empty when nothing exceeded the
	// watch's min density).
	S []int `json:"s,omitempty"`
	// Contrast is the density difference observed − expected.
	Contrast float64 `json:"contrast,omitempty"`
	// Affinity is set for measure "affinity".
	Affinity float64 `json:"affinity,omitempty"`
	// Interrupted reports that the mining was cut short (solve timeout or
	// client disconnect) and S is the best-so-far partial answer; the
	// observation was still folded into the expectation.
	Interrupted bool `json:"interrupted,omitempty"`
	// Mode is "scratch" (full-graph solve) or "incremental" (delta tick
	// mined on the delta's neighborhood, warm-started from the previous
	// subgraph). Full-snapshot observations are always scratch.
	Mode string `json:"mode,omitempty"`
	// WarmHit marks an incremental tick on which the locally-improved
	// previous subgraph beat every fresh solver candidate.
	WarmHit    bool      `json:"warm_hit,omitempty"`
	ObservedAt time.Time `json:"observed_at"`
	ElapsedMS  float64   `json:"elapsed_ms"`
}

// WatchReportsResponse is the body of GET /v1/watches/{name}/reports.
type WatchReportsResponse struct {
	Name string `json:"name"`
	Step int    `json:"step"`
	// Reports is the retained tail of the bounded ring, oldest first.
	Reports []WatchReport `json:"reports"`
}

// WatchStats summarizes the watch registry for /healthz. All counters are
// cumulative and keep counting deleted watches.
type WatchStats struct {
	Count        int `json:"count"`
	Observations int `json:"observations"`
	Anomalies    int `json:"anomalies"`
	// ScratchTicks and IncrementalTicks split Observations by solve path:
	// full-graph solves (snapshots, resyncs, drift re-checks, locality
	// fallbacks) versus delta ticks served by the warm-started region solve.
	ScratchTicks     int `json:"scratch_ticks"`
	IncrementalTicks int `json:"incremental_ticks"`
	// WarmHits counts incremental ticks won by the improved previous
	// subgraph; WarmHitRate is WarmHits/IncrementalTicks (0 when no
	// incremental tick has run).
	WarmHits    int     `json:"warm_hits"`
	WarmHitRate float64 `json:"warm_hit_rate"`
}

// PersistStats summarizes the persistence layer for /healthz. All counters
// are zero (and Enabled false) on an in-memory server.
type PersistStats struct {
	// Enabled reports whether the server was built with Open (a data
	// directory) rather than New (memory only).
	Enabled bool `json:"enabled"`
	// SnapshotsRestored/WatchesRestored count state recovered at boot.
	SnapshotsRestored int `json:"snapshots_restored"`
	WatchesRestored   int `json:"watches_restored"`
	// RestoreErrors counts boot-time state that could not be recovered
	// (unreadable manifests, checksum failures); the server boots degraded
	// rather than not at all.
	RestoreErrors int `json:"restore_errors"`
	// SnapshotWrites counts write-through snapshot mirrors (Put and Delete).
	SnapshotWrites int `json:"snapshot_writes"`
	// WatchCheckpoints counts watch-state checkpoints written.
	WatchCheckpoints int `json:"watch_checkpoints"`
	// WriteErrors counts failed disk writes of either kind; the in-memory
	// state stays authoritative when one fails.
	WriteErrors int `json:"write_errors"`
}

// MemoryStats summarizes the snapshot memory budget for /healthz. On an
// in-memory server (serve.New) only the heap figure is live and Enabled is
// false — there are no snapshot mappings to account.
type MemoryStats struct {
	// Enabled reports whether the out-of-core snapshot store is active
	// (serve.Open): snapshots served from lazily opened, evictable mappings.
	Enabled bool `json:"enabled"`
	// LimitBytes is the configured budget over open snapshot bytes
	// (Config.MemLimit, dcsd -memlimit); 0 means unlimited.
	LimitBytes int64 `json:"limit_bytes,omitempty"`
	// HeapInUseBytes is the Go runtime's in-use heap (spans holding live
	// objects) — the process side of the memory story; mapped snapshot
	// bytes live outside it.
	HeapInUseBytes uint64 `json:"heap_in_use_bytes"`
	// MappedBytes is the total size of open snapshot file mappings.
	MappedBytes int64 `json:"mapped_bytes"`
	// ShadowBytes counts heap bytes held by open snapshots beyond their
	// mapping: resident offset indexes, decoded compressed sections, and
	// whole graphs on platforms that cannot map.
	ShadowBytes int64 `json:"shadow_bytes"`
	// LazySnapshots counts registered on-disk snapshot versions (open or
	// not); OpenSnapshots the ones currently mapped; PinnedSnapshots the
	// open ones a running solve or job holds (eviction skips them).
	LazySnapshots   int `json:"lazy_snapshots"`
	OpenSnapshots   int `json:"open_snapshots"`
	PinnedSnapshots int `json:"pinned_snapshots"`
	// Evictions counts mappings closed under memory pressure; Remaps counts
	// re-opens of previously evicted snapshots (cold-start opens are neither).
	Evictions uint64 `json:"evictions"`
	Remaps    uint64 `json:"remaps"`
}

// HealthResponse is the body returned by GET /healthz.
type HealthResponse struct {
	Status    string  `json:"status"`
	Snapshots int     `json:"snapshots"`
	InFlight  int     `json:"in_flight"`
	Waiting   int     `json:"waiting"`
	UptimeSec float64 `json:"uptime_sec"`
	// DiffCache reports the difference-graph cache counters.
	DiffCache CacheStats `json:"diff_cache"`
	// Jobs reports the async job registry counters.
	Jobs JobStats `json:"jobs"`
	// Watches reports the streaming watch registry counters.
	Watches WatchStats `json:"watches"`
	// Persistence reports the durability layer's counters (serve.Open).
	Persistence PersistStats `json:"persistence"`
	// Memory reports the snapshot memory budget: heap in use, mapped bytes,
	// open/pinned snapshot counts, eviction and re-map counters.
	Memory MemoryStats `json:"memory"`
}

// ErrorResponse carries any non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
