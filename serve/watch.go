package serve

import (
	"context"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	dcs "github.com/dcslib/dcs"
	"github.com/dcslib/dcs/evolve"
)

// maxWatchReports caps any report ring: a watch cannot be registered with an
// unbounded (or absurd) retention demand.
const maxWatchReports = 4096

// maxSolveTimeoutMS caps a watch's per-observation solve budget (~31 years).
// Beyond roughly 9.2e12 ms the float64→time.Duration conversion would
// overflow int64 and silently disable the timeout.
const maxSolveTimeoutMS = 1e12

// watch is one registered streaming anomaly watch: an evolve.Tracker plus a
// bounded ring of recent reports. Two locks split hot from slow: obsMu
// serializes observations — ticks must enter the tracker in stream order, so
// it is held across the whole (possibly long) mining solve — while mu guards
// only the cheap read state (step, ring, counters), so GET /v1/watches and
// GET .../reports answer instantly even while an observe is mining. The
// tracker itself is internally locked the same way: its read-side accessors
// (Expectation, CheckpointState, Stats) never wait behind an in-flight solve.
// Different watches observe concurrently, each on its own pool slot.
type watch struct {
	name         string
	n            int
	lambda       float64
	measure      string
	minDensity   float64
	solveTimeout time.Duration
	ringCap      int
	resync       int // effective scratch re-solve interval (defaults applied)
	created      time.Time

	// obsMu serializes observes. Nothing that might hold it reaches for
	// mu's state except through the short-held mu section at the end of an
	// observe (obsMu → mu, never the reverse).
	obsMu   sync.Mutex
	tracker *evolve.Tracker // guarded by obsMu; see checkpointState for the sanctioned exception

	// mu guards the observation results; held only for O(ring) copies. The
	// step count is mirrored here so the ring and its step advance under
	// one lock.
	mu        sync.Mutex
	step      int           // guarded by mu
	reports   []WatchReport // guarded by mu; circular once full; oldest at head
	head      int           // guarded by mu; index of the oldest report when the ring is full
	anomalies int           // guarded by mu
	lastSeen  time.Time     // guarded by mu
}

// checkpointState captures everything a checkpoint persists, without ever
// taking obsMu — a checkpoint must not block behind a long solve. The
// expectation, delta base and step come from the tracker's tick-atomic
// CheckpointState (mid-solve it reports the last completed tick); the ring is
// copied under mu. The two are read back to back, so a tick committing in
// between can leave the ring one report behind the step — harmless, the next
// checkpoint catches it up. The returned manifest carries no file names; the
// persister fills those in.
func (w *watch) checkpointState() (watchManifest, *dcs.Graph, *dcs.Graph) {
	//lint:allow guardedby -- sanctioned lock-free read: CheckpointState is tick-atomic by the tracker's own internal lock, and a checkpoint must not wait behind a long solve holding obsMu (see doc comment)
	expect, last, step := w.tracker.CheckpointState()
	w.mu.Lock()
	defer w.mu.Unlock()
	man := watchManifest{
		Name:           w.name,
		N:              w.n,
		Lambda:         w.lambda,
		Measure:        w.measure,
		MinDensity:     w.minDensity,
		SolveTimeoutMS: float64(w.solveTimeout) / float64(time.Millisecond),
		ReportCap:      w.ringCap,
		ResyncEvery:    w.resync,
		CreatedAt:      w.created,
		Step:           step,
		Anomalies:      w.anomalies,
	}
	if !w.lastSeen.IsZero() {
		t := w.lastSeen
		man.LastSeen = &t
	}
	// Unroll the ring oldest-first, the same order GET .../reports serves,
	// dropping reports newer than the tracker step being persisted.
	man.Reports = make([]WatchReport, 0, len(w.reports))
	man.Reports = append(man.Reports, w.reports[w.head:]...)
	man.Reports = append(man.Reports, w.reports[:w.head]...)
	for len(man.Reports) > 0 && man.Reports[len(man.Reports)-1].Step > step {
		man.Reports = man.Reports[:len(man.Reports)-1]
	}
	return man, expect, last
}

func (w *watch) info() WatchInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	info := WatchInfo{
		Name:           w.name,
		N:              w.n,
		Lambda:         w.lambda,
		Measure:        w.measure,
		MinDensity:     w.minDensity,
		SolveTimeoutMS: float64(w.solveTimeout) / float64(time.Millisecond),
		ReportCap:      w.ringCap,
		ResyncEvery:    w.resync,
		Step:           w.step,
		Anomalies:      w.anomalies,
		CreatedAt:      w.created,
	}
	if !w.lastSeen.IsZero() {
		t := w.lastSeen
		info.LastObserved = &t
	}
	return info
}

// watchRegistry tracks the registered watches. The cumulative counters keep
// counting deleted watches, mirroring jobRegistry.
type watchRegistry struct {
	mu           sync.Mutex
	watches      map[string]*watch // guarded by mu
	observations int               // guarded by mu
	anomalies    int               // guarded by mu
	// scratch/incremental split observations by solve path; warmHits counts
	// incremental ticks won by the improved previous subgraph.
	scratch     int // guarded by mu
	incremental int // guarded by mu
	warmHits    int // guarded by mu
}

func newWatchRegistry() *watchRegistry {
	return &watchRegistry{watches: make(map[string]*watch)}
}

// admissible reports (under the lock the caller holds) why a registration of
// name would be refused: registration disabled, duplicate name, or registry
// full.
func (reg *watchRegistry) admissible(name string, maxWatches int) *httpError {
	if maxWatches < 0 {
		return &httpError{status: http.StatusServiceUnavailable,
			msg: "watch registration is disabled on this server"}
	}
	if _, ok := reg.watches[name]; ok {
		return &httpError{status: http.StatusConflict,
			msg: "watch " + name + " already exists (delete it first to reconfigure)"}
	}
	if len(reg.watches) >= maxWatches {
		return &httpError{status: http.StatusServiceUnavailable,
			msg: "watch limit reached; delete a watch first"}
	}
	return nil
}

// precheck cheaply rejects a registration that add would refuse, so the
// caller does not build the tracker's O(n) state for a request the registry
// will bounce. add re-checks authoritatively at insert time.
func (reg *watchRegistry) precheck(name string, maxWatches int) *httpError {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.admissible(name, maxWatches)
}

// add registers a fresh watch. It fails when the name is taken (conflict) or
// the registry is full (maxWatches > 0; negative disables registration).
func (reg *watchRegistry) add(w *watch, maxWatches int) *httpError {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if herr := reg.admissible(w.name, maxWatches); herr != nil {
		return herr
	}
	reg.watches[w.name] = w
	return nil
}

// restore inserts a recovered watch at boot, bypassing the max-watches
// admission (the state predates this process). A duplicate name is refused.
func (reg *watchRegistry) restore(w *watch) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.watches[w.name]; ok {
		return false
	}
	reg.watches[w.name] = w
	return true
}

func (reg *watchRegistry) get(name string) (*watch, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	w, ok := reg.watches[name]
	return w, ok
}

// removeIf deletes the name only while w is still its current entry,
// reporting whether it removed anything — the identity-checked variant for
// rollback paths, where a plain by-name remove could take out a watch that
// concurrently replaced w.
func (reg *watchRegistry) removeIf(name string, w *watch) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if cur, ok := reg.watches[name]; ok && cur == w {
		delete(reg.watches, name)
		return true
	}
	return false
}

// remove deletes the named watch, reporting whether it existed. An observe
// in flight on the removed watch completes against its own reference; the
// watch's graphs are freed once that returns.
func (reg *watchRegistry) remove(name string) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	_, ok := reg.watches[name]
	delete(reg.watches, name)
	return ok
}

// recordObservation bumps the cumulative counters.
func (reg *watchRegistry) recordObservation(rep *WatchReport) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.observations++
	if rep.Anomalous {
		reg.anomalies++
	}
	if rep.Mode == evolve.ModeIncremental {
		reg.incremental++
		if rep.WarmHit {
			reg.warmHits++
		}
	} else {
		reg.scratch++
	}
}

func (reg *watchRegistry) list() []WatchInfo {
	reg.mu.Lock()
	ws := make([]*watch, 0, len(reg.watches))
	for _, w := range reg.watches {
		ws = append(ws, w)
	}
	reg.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].name < ws[j].name })
	infos := make([]WatchInfo, 0, len(ws))
	for _, w := range ws {
		infos = append(infos, w.info())
	}
	return infos
}

func (reg *watchRegistry) stats() WatchStats {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st := WatchStats{
		Count:            len(reg.watches),
		Observations:     reg.observations,
		Anomalies:        reg.anomalies,
		ScratchTicks:     reg.scratch,
		IncrementalTicks: reg.incremental,
		WarmHits:         reg.warmHits,
	}
	if st.IncrementalTicks > 0 {
		st.WarmHitRate = float64(st.WarmHits) / float64(st.IncrementalTicks)
	}
	return st
}

// DeltaBetween expresses cur as a set-semantics edge delta against prev,
// ready for POST /v1/watches/{name}/observe: changed or new edges carry
// their new weight, vanished edges carry 0 (the removal marker). Duplicate
// entries within either graph sum first (Builder semantics), so feeding the
// returned delta is equivalent to feeding cur as a full snapshot — up to
// floating-point tolerance: the server feeds deltas to the tracker's
// incremental engine (evolve.Tracker.ObserveDelta), which maintains the
// difference graph with a lazily-scaled accumulator instead of rebuilding it.
// This is the client-side encoder watch clients (cmd/dcswatch, the tests)
// share.
func DeltaBetween(prev, cur GraphJSON) []EdgeJSON {
	type pair struct{ u, v int }
	index := func(g GraphJSON) map[pair]float64 {
		m := make(map[pair]float64, len(g.Edges))
		for _, e := range g.Edges {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			m[pair{u, v}] += e.W
		}
		return m
	}
	pw, cw := index(prev), index(cur)
	delta := make([]EdgeJSON, 0)
	for p, w := range cw {
		if old, ok := pw[p]; !ok || old != w {
			delta = append(delta, EdgeJSON{U: p.u, V: p.v, W: w})
		}
	}
	for p := range pw {
		if _, ok := cw[p]; !ok {
			delta = append(delta, EdgeJSON{U: p.u, V: p.v, W: 0})
		}
	}
	return delta
}

// registerWatch validates one WatchRequest and builds the watch.
func (s *Server) registerWatch(req *WatchRequest) (*watch, *httpError) {
	if req.Name == "" {
		return nil, badRequest("watch name is required")
	}
	if strings.Contains(req.Name, "/") {
		return nil, badRequest("watch name must not contain '/'")
	}
	if req.N < 1 {
		return nil, badRequest("vertex count must be positive, got %d", req.N)
	}
	if req.N > s.cfg.MaxVertices {
		return nil, badRequest("vertex count %d exceeds the server limit %d", req.N, s.cfg.MaxVertices)
	}
	measure := req.Measure
	if measure == "" {
		measure = "avgdeg"
	}
	if measure != "avgdeg" && measure != "affinity" {
		return nil, badRequest("unknown watch measure %q: want avgdeg | affinity", measure)
	}
	if req.SolveTimeoutMS < 0 || req.SolveTimeoutMS > maxSolveTimeoutMS || math.IsNaN(req.SolveTimeoutMS) {
		return nil, badRequest("solve_timeout_ms must be in [0, %g]", float64(maxSolveTimeoutMS))
	}
	ringCap := req.Reports
	switch {
	case ringCap == 0:
		ringCap = s.cfg.WatchReports
	case ringCap < 0 || ringCap > maxWatchReports:
		return nil, badRequest("reports must be in [1, %d]", maxWatchReports)
	}
	if req.ResyncEvery < 0 {
		return nil, badRequest("resync_every must be ≥ 0 (0 for the default), got %d", req.ResyncEvery)
	}
	resync := req.ResyncEvery
	if resync == 0 {
		resync = s.cfg.WatchResync
	}
	// Cheap registry check before allocating the tracker's O(n) state; add
	// below re-checks under the same lock against concurrent registrations.
	if herr := s.watches.precheck(req.Name, s.cfg.MaxWatches); herr != nil {
		return nil, herr
	}
	tracker, err := evolve.New(req.N, evolve.Config{
		Lambda:      req.Lambda,
		MinDensity:  req.MinDensity,
		GA:          measure == "affinity",
		Opt:         *s.defaultOptions(),
		ResyncEvery: resync,
	})
	if err != nil {
		return nil, badRequest("%s", err)
	}
	w := &watch{
		name:         req.Name,
		n:            req.N,
		lambda:       req.Lambda,
		measure:      measure,
		minDensity:   req.MinDensity,
		solveTimeout: time.Duration(req.SolveTimeoutMS * float64(time.Millisecond)),
		ringCap:      ringCap,
		resync:       resync,
		created:      time.Now(),
		tracker:      tracker,
	}
	if w.lambda == 0 {
		w.lambda = 0.3 // echo the applied defaults in infos
	}
	if w.resync == 0 {
		w.resync = evolve.DefaultResyncEvery
	}
	if herr := s.watches.add(w, s.cfg.MaxWatches); herr != nil {
		return nil, herr
	}
	// Write-through: a registered watch must survive a restart even if it is
	// never observed before the process dies. A failed write rolls the
	// registration back — a 200 here promises durability.
	if s.persist != nil {
		if err := s.persist.checkpointWatch(w); err != nil {
			// Identity-checked rollback: if a concurrent delete+re-register
			// already replaced w under this name, both the registry entry
			// and the files on disk belong to the new owner.
			if s.watches.removeIf(w.name, w) {
				s.persist.deleteWatch(w.name)
			}
			return nil, &httpError{status: http.StatusInternalServerError,
				msg: "failed to persist watch " + w.name + ": " + err.Error()}
		}
	}
	return w, nil
}

// observationGraph turns one observe body into the observed graph. Full
// snapshots build outside the watch lock; deltas only validate here — the
// merge against the previous observation must run under the lock, so the
// validated edge list is returned instead.
func (s *Server) observationGraph(w *watch, req *WatchObserveRequest) (*dcs.Graph, []dcs.Edge, *httpError) {
	switch {
	case req.Graph != nil && req.Delta != nil:
		return nil, nil, badRequest("give a full graph or a delta, not both")
	case req.Graph != nil:
		if req.Graph.N != w.n {
			return nil, nil, badRequest("snapshot has %d vertices, watch %q has %d", req.Graph.N, w.name, w.n)
		}
		g, err := req.Graph.Build()
		if err != nil {
			return nil, nil, badRequest("bad graph: %s", err)
		}
		return g, nil, nil
	case req.Delta != nil:
		edges := make([]dcs.Edge, 0, len(req.Delta))
		for i, e := range req.Delta {
			if e.U < 0 || e.U >= w.n || e.V < 0 || e.V >= w.n {
				return nil, nil, badRequest("delta %d: (%d,%d) out of range [0,%d)", i, e.U, e.V, w.n)
			}
			if e.U == e.V {
				return nil, nil, badRequest("delta %d: self-loop on vertex %d", i, e.U)
			}
			if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
				return nil, nil, badRequest("delta %d: non-finite weight", i)
			}
			edges = append(edges, dcs.Edge{U: e.U, V: e.V, W: e.W})
		}
		return nil, edges, nil
	default:
		return nil, nil, badRequest("missing observation: give a full graph or a delta (an empty delta list means no change)")
	}
}

// watchSolveCtx derives the context one observation mines under: the
// request's own context bounded by the watch's solve timeout and the
// server's, whichever is smaller.
func (s *Server) watchSolveCtx(r *http.Request, w *watch) (context.Context, context.CancelFunc) {
	eff := s.cfg.SolveTimeout
	if w.solveTimeout > 0 && (eff == 0 || w.solveTimeout < eff) {
		eff = w.solveTimeout
	}
	if eff > 0 {
		return context.WithTimeout(r.Context(), eff)
	}
	return r.Context(), func() {}
}

// handleWatches serves POST /v1/watches (register) and GET /v1/watches
// (list).
func (s *Server) handleWatches(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.watches.list())
	case http.MethodPost:
		var req WatchRequest
		if err := s.decodeBody(w, r, &req); err != nil {
			writeHTTPError(w, err)
			return
		}
		wt, herr := s.registerWatch(&req)
		if herr != nil {
			writeHTTPError(w, herr)
			return
		}
		writeJSON(w, http.StatusOK, wt.info())
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleWatchByPath routes /v1/watches/{name}[/observe | /reports].
func (s *Server) handleWatchByPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/watches/")
	name, sub, _ := strings.Cut(rest, "/")
	if name == "" {
		writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
		return
	}
	switch sub {
	case "":
		s.handleWatchByName(w, r, name)
	case "observe":
		s.handleWatchObserve(w, r, name)
	case "reports":
		s.handleWatchReports(w, r, name)
	default:
		writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
	}
}

func (s *Server) handleWatchByName(w http.ResponseWriter, r *http.Request, name string) {
	switch r.Method {
	case http.MethodGet:
		wt, ok := s.watches.get(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown watch %q", name)
			return
		}
		writeJSON(w, http.StatusOK, wt.info())
	case http.MethodDelete:
		if !s.watches.remove(name) {
			writeError(w, http.StatusNotFound, "unknown watch %q", name)
			return
		}
		// After the registry remove: a concurrent checkpoint flush either
		// already failed its registration check or serializes behind this
		// deletion on the persister lock — either way the files stay gone.
		if s.persist != nil {
			s.persist.deleteWatch(name)
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

func (s *Server) handleWatchObserve(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	wt, ok := s.watches.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown watch %q", name)
		return
	}
	var req WatchObserveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeHTTPError(w, err)
		return
	}
	observed, delta, herr := s.observationGraph(wt, &req)
	if herr != nil {
		writeHTTPError(w, herr)
		return
	}
	// Serialize on the watch BEFORE taking a pool slot: ticks queued behind
	// the previous tick's solve wait slot-free, so one slow stream cannot
	// pin every pool slot and starve the other endpoints. The lock order is
	// strictly obsMu → pool; pool-slot holders never wait on an obsMu, so
	// there is no cycle.
	wt.obsMu.Lock()
	defer wt.obsMu.Unlock()
	release, err := s.admit(r)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	defer release()
	// The solve budget starts only now, with the slot and the lock both
	// held: queueing time must not eat into this observation's mining
	// compute (same rule as the job runner's post-acquire timeout).
	ctx, cancel := s.watchSolveCtx(r, wt)
	defer cancel()
	started := time.Now()
	var rep evolve.Report
	if observed == nil {
		// Delta tick: the tracker applies it to its own observation base
		// and runs the incremental engine (warm-started region solve, with
		// scratch resyncs per the watch's resync_every).
		rep, err = wt.tracker.ObserveDeltaCtx(ctx, delta)
	} else {
		// Full snapshot: always a from-scratch solve, and resets the
		// incremental engine's state.
		rep, err = wt.tracker.ObserveCtx(ctx, observed)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%s", err)
		return
	}
	report := WatchReport{
		Step:        rep.Step,
		Anomalous:   rep.Anomalous(),
		S:           rep.S,
		Contrast:    rep.Contrast,
		Affinity:    rep.Affinity,
		Interrupted: rep.Interrupted,
		Mode:        rep.Mode,
		WarmHit:     rep.WarmHit,
		ObservedAt:  time.Now(),
		ElapsedMS:   float64(time.Since(started)) / float64(time.Millisecond),
	}

	wt.mu.Lock()
	wt.step = rep.Step
	wt.lastSeen = report.ObservedAt
	if report.Anomalous {
		wt.anomalies++
	}
	// Bounded ring, O(1) per tick: once full, the newest report overwrites
	// the oldest slot and the head advances.
	if len(wt.reports) < wt.ringCap {
		wt.reports = append(wt.reports, report)
	} else {
		wt.reports[wt.head] = report
		wt.head = (wt.head + 1) % wt.ringCap
	}
	wt.mu.Unlock()

	s.watches.recordObservation(&report)
	if s.persist != nil {
		s.persist.markDirty(wt)
	}
	writeJSON(w, http.StatusOK, report)
}

func (s *Server) handleWatchReports(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	wt, ok := s.watches.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown watch %q", name)
		return
	}
	wt.mu.Lock()
	// Unroll the circular ring oldest-first (head is 0 until it fills).
	reports := make([]WatchReport, 0, len(wt.reports))
	reports = append(reports, wt.reports[wt.head:]...)
	reports = append(reports, wt.reports[:wt.head]...)
	resp := WatchReportsResponse{
		Name:    wt.name,
		Step:    wt.step,
		Reports: reports,
	}
	wt.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
