package serve

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"
)

// streamPair is one edge of a synthetic stream snapshot.
type streamPair struct{ u, v int }

// watchStream deterministically generates the snapshots of a synthetic
// stream: a noisy backbone every step, plus a planted heavy clique from step
// inject onward. Snapshot weights depend only on (seed, step), so two
// generations of the same stream are identical.
func watchStream(seed int64, n, steps, inject int, clique []int) []GraphJSON {
	rng := rand.New(rand.NewSource(seed))
	var backbone []streamPair
	for k := 0; k < 3*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			backbone = append(backbone, streamPair{u, v})
		}
	}
	snaps := make([]GraphJSON, 0, steps)
	for step := 1; step <= steps; step++ {
		g := GraphJSON{N: n}
		seen := map[streamPair]bool{}
		for _, p := range backbone {
			u, v := p.u, p.v
			if u > v {
				u, v = v, u
			}
			if seen[streamPair{u, v}] {
				continue // Builder would sum duplicates; deltas want set-once pairs
			}
			seen[streamPair{u, v}] = true
			g.Edges = append(g.Edges, EdgeJSON{U: u, V: v, W: 1 + rng.Float64()})
		}
		if step >= inject {
			for i := 0; i < len(clique); i++ {
				for j := i + 1; j < len(clique); j++ {
					g.Edges = append(g.Edges, EdgeJSON{U: clique[i], V: clique[j], W: 25})
				}
			}
		}
		snaps = append(snaps, g)
	}
	return snaps
}

// registerTestWatch registers a watch, failing the test on any error.
func registerTestWatch(t *testing.T, s *Server, req WatchRequest) WatchInfo {
	t.Helper()
	var info WatchInfo
	if code := doJSON(t, s, http.MethodPost, "/v1/watches", req, &info); code != http.StatusOK {
		t.Fatalf("register watch %q: status %d", req.Name, code)
	}
	return info
}

// observeWatch feeds one observation, failing the test on any error.
func observeWatch(t *testing.T, s *Server, name string, body WatchObserveRequest) WatchReport {
	t.Helper()
	var rep WatchReport
	if code := doJSON(t, s, http.MethodPost, "/v1/watches/"+name+"/observe", body, &rep); code != http.StatusOK {
		t.Fatalf("observe %q: status %d", name, code)
	}
	return rep
}

func TestWatchRegistration(t *testing.T) {
	s := New(Config{})
	info := registerTestWatch(t, s, WatchRequest{Name: "w", N: 10, Lambda: 0.5, MinDensity: 2})
	if info.Name != "w" || info.N != 10 || info.Lambda != 0.5 || info.Measure != "avgdeg" || info.Step != 0 {
		t.Fatalf("unexpected info %+v", info)
	}
	if info.ReportCap != 32 {
		t.Fatalf("default report cap %d, want 32", info.ReportCap)
	}

	// Defaults echo: zero lambda means 0.3.
	dflt := registerTestWatch(t, s, WatchRequest{Name: "d", N: 10})
	if dflt.Lambda != 0.3 {
		t.Fatalf("defaulted lambda %v, want 0.3", dflt.Lambda)
	}

	// Duplicate name conflicts.
	if code := doJSON(t, s, http.MethodPost, "/v1/watches", WatchRequest{Name: "w", N: 10}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate watch: status %d, want 409", code)
	}

	// Invalid registrations.
	for name, req := range map[string]WatchRequest{
		"missing name":    {N: 10},
		"slash in name":   {Name: "a/b", N: 10},
		"zero n":          {Name: "x", N: 0},
		"negative lambda": {Name: "x", N: 10, Lambda: -1},
		"lambda above 1":  {Name: "x", N: 10, Lambda: 1.5},
		"bad measure":     {Name: "x", N: 10, Measure: "modularity"},
		"negative ring":   {Name: "x", N: 10, Reports: -3},
		"huge ring":       {Name: "x", N: 10, Reports: 1 << 20},
		"negative solve":  {Name: "x", N: 10, SolveTimeoutMS: -5},
		"overflow solve":  {Name: "x", N: 10, SolveTimeoutMS: 1e13},
	} {
		if code := doJSON(t, s, http.MethodPost, "/v1/watches", req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}

	// Listing is sorted by name.
	var list []WatchInfo
	if code := doJSON(t, s, http.MethodGet, "/v1/watches", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) != 2 || list[0].Name != "d" || list[1].Name != "w" {
		t.Fatalf("unexpected list %+v", list)
	}

	// The registration bound turns into 503 until a watch is deleted.
	bounded := New(Config{MaxWatches: 1})
	registerTestWatch(t, bounded, WatchRequest{Name: "only", N: 5})
	if code := doJSON(t, bounded, http.MethodPost, "/v1/watches", WatchRequest{Name: "more", N: 5}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("over watch limit: status %d, want 503", code)
	}
	if code := doJSON(t, bounded, http.MethodDelete, "/v1/watches/only", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	registerTestWatch(t, bounded, WatchRequest{Name: "more", N: 5})

	// Negative MaxWatches disables registration outright.
	disabled := New(Config{MaxWatches: -1})
	if code := doJSON(t, disabled, http.MethodPost, "/v1/watches", WatchRequest{Name: "x", N: 5}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("disabled registration: status %d, want 503", code)
	}
}

func TestWatchObserveErrors(t *testing.T) {
	s := New(Config{})
	registerTestWatch(t, s, WatchRequest{Name: "w", N: 5})
	small := GraphJSON{N: 3}
	ok := GraphJSON{N: 5}
	for name, c := range map[string]struct {
		body WatchObserveRequest
		want int
	}{
		"empty body":     {WatchObserveRequest{}, http.StatusBadRequest},
		"both styles":    {WatchObserveRequest{Graph: &ok, Delta: []EdgeJSON{{U: 0, V: 1, W: 1}}}, http.StatusBadRequest},
		"wrong n":        {WatchObserveRequest{Graph: &small}, http.StatusBadRequest},
		"delta range":    {WatchObserveRequest{Delta: []EdgeJSON{{U: 0, V: 9, W: 1}}}, http.StatusBadRequest},
		"delta selfloop": {WatchObserveRequest{Delta: []EdgeJSON{{U: 2, V: 2, W: 1}}}, http.StatusBadRequest},
	} {
		if code := doJSON(t, s, http.MethodPost, "/v1/watches/w/observe", c.body, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", name, code, c.want)
		}
	}
	// Unknown watch everywhere.
	if code := doJSON(t, s, http.MethodPost, "/v1/watches/nope/observe", WatchObserveRequest{Graph: &ok}, nil); code != http.StatusNotFound {
		t.Errorf("observe unknown: status %d, want 404", code)
	}
	if code := doJSON(t, s, http.MethodGet, "/v1/watches/nope/reports", nil, nil); code != http.StatusNotFound {
		t.Errorf("reports unknown: status %d, want 404", code)
	}
	if code := doJSON(t, s, http.MethodDelete, "/v1/watches/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("delete unknown: status %d, want 404", code)
	}
	// Bad methods and paths.
	if code := doJSON(t, s, http.MethodGet, "/v1/watches/w/observe", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET observe: status %d, want 405", code)
	}
	if code := doJSON(t, s, http.MethodGet, "/v1/watches/w/bogus", nil, nil); code != http.StatusNotFound {
		t.Errorf("bogus subresource: status %d, want 404", code)
	}
}

// TestWatchSmoke is the CI watch-API smoke: register, observe twice, and the
// second observation — a sudden triangle history does not explain — must be
// reported anomalous. Kept fast and dependency-free on purpose.
func TestWatchSmoke(t *testing.T) {
	s := New(Config{})
	registerTestWatch(t, s, WatchRequest{Name: "smoke", N: 6, Lambda: 0.5, MinDensity: 2})
	steady := GraphJSON{N: 6, Edges: []EdgeJSON{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}}
	rep1 := observeWatch(t, s, "smoke", WatchObserveRequest{Graph: &steady})
	if rep1.Step != 1 || rep1.Anomalous {
		t.Fatalf("steady first step misreported: %+v", rep1)
	}
	spike := GraphJSON{N: 6, Edges: append(append([]EdgeJSON{}, steady.Edges...),
		EdgeJSON{U: 3, V: 4, W: 5}, EdgeJSON{U: 4, V: 5, W: 5}, EdgeJSON{U: 3, V: 5, W: 5})}
	rep2 := observeWatch(t, s, "smoke", WatchObserveRequest{Graph: &spike})
	if !rep2.Anomalous || len(rep2.S) != 3 || rep2.S[0] != 3 {
		t.Fatalf("planted triangle not reported: %+v", rep2)
	}
	var reports WatchReportsResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/watches/smoke/reports", nil, &reports); code != http.StatusOK {
		t.Fatalf("reports: status %d", code)
	}
	anomalous := 0
	for _, r := range reports.Reports {
		if r.Anomalous {
			anomalous++
		}
	}
	if len(reports.Reports) != 2 || anomalous != 1 {
		t.Fatalf("got %d reports with %d anomalies, want 2 with 1", len(reports.Reports), anomalous)
	}
}

func TestWatchRingBoundedAndStats(t *testing.T) {
	s := New(Config{})
	registerTestWatch(t, s, WatchRequest{Name: "ring", N: 4, Reports: 3, MinDensity: 100})
	g := GraphJSON{N: 4, Edges: []EdgeJSON{{0, 1, 1}}}
	for i := 0; i < 5; i++ {
		observeWatch(t, s, "ring", WatchObserveRequest{Graph: &g})
	}
	var resp WatchReportsResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/watches/ring/reports", nil, &resp); code != http.StatusOK {
		t.Fatalf("reports: status %d", code)
	}
	if resp.Step != 5 || len(resp.Reports) != 3 {
		t.Fatalf("step %d with %d retained reports, want 5 with 3", resp.Step, len(resp.Reports))
	}
	// Oldest dropped: the ring holds steps 3, 4, 5 in order.
	for i, r := range resp.Reports {
		if r.Step != i+3 {
			t.Fatalf("ring slot %d holds step %d, want %d", i, r.Step, i+3)
		}
	}
	// Health stats count the watch and its observations.
	var h HealthResponse
	doJSON(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.Watches.Count != 1 || h.Watches.Observations != 5 || h.Watches.Anomalies != 0 {
		t.Fatalf("health watch stats %+v", h.Watches)
	}
	// Deleting the watch frees its registry slot; cumulative counters remain.
	if code := doJSON(t, s, http.MethodDelete, "/v1/watches/ring", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	doJSON(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.Watches.Count != 0 || h.Watches.Observations != 5 {
		t.Fatalf("health watch stats after delete %+v", h.Watches)
	}
}

// TestWatchLifecycleConcurrent drives one watch from many goroutines while
// others list, poll reports and run a second watch; meant for -race. The
// per-watch mutex serializes the stream, so every observation lands exactly
// once and the ring stays bounded.
func TestWatchLifecycleConcurrent(t *testing.T) {
	s := New(Config{PoolSize: 4})
	registerTestWatch(t, s, WatchRequest{Name: "hot", N: 30, Reports: 4, MinDensity: 1000})
	registerTestWatch(t, s, WatchRequest{Name: "cold", N: 30, MinDensity: 1000})
	g := GraphJSON{N: 30, Edges: []EdgeJSON{{0, 1, 2}, {1, 2, 2}, {3, 4, 1}}}

	const workers, rounds = 6, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := "hot"
				if w%3 == 2 {
					name = "cold"
				}
				var rep WatchReport
				if code := doJSON(t, s, http.MethodPost, "/v1/watches/"+name+"/observe",
					WatchObserveRequest{Graph: &g}, &rep); code != http.StatusOK {
					t.Errorf("observe: status %d", code)
				}
				doJSON(t, s, http.MethodGet, "/v1/watches", nil, nil)
				doJSON(t, s, http.MethodGet, "/v1/watches/hot/reports", nil, nil)
			}
		}(w)
	}
	wg.Wait()

	var h HealthResponse
	doJSON(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.Watches.Observations != workers*rounds {
		t.Fatalf("observations %d, want %d", h.Watches.Observations, workers*rounds)
	}
	var hot, cold WatchInfo
	doJSON(t, s, http.MethodGet, "/v1/watches/hot", nil, &hot)
	doJSON(t, s, http.MethodGet, "/v1/watches/cold", nil, &cold)
	if hot.Step+cold.Step != workers*rounds {
		t.Fatalf("steps hot=%d cold=%d, want total %d", hot.Step, cold.Step, workers*rounds)
	}
	var resp WatchReportsResponse
	doJSON(t, s, http.MethodGet, "/v1/watches/hot/reports", nil, &resp)
	if len(resp.Reports) != 4 {
		t.Fatalf("ring holds %d reports, want its capacity 4", len(resp.Reports))
	}
	// Delete under load already finished: now both watches go away cleanly.
	for _, name := range []string{"hot", "cold"} {
		if code := doJSON(t, s, http.MethodDelete, "/v1/watches/"+name, nil, nil); code != http.StatusOK {
			t.Fatalf("delete %s: status %d", name, code)
		}
	}
	doJSON(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.Watches.Count != 0 {
		t.Fatalf("watches remain after delete: %+v", h.Watches)
	}
}

// TestWatchReadsDontBlockDuringObserve pins the two-lock design: listing
// watches, reading one watch's info and polling its reports must all answer
// while an observation is mid-solve (simulated by holding the observe lock,
// exactly what a long-running mine does).
func TestWatchReadsDontBlockDuringObserve(t *testing.T) {
	s := New(Config{})
	registerTestWatch(t, s, WatchRequest{Name: "busy", N: 5})
	g := GraphJSON{N: 5, Edges: []EdgeJSON{{0, 1, 1}}}
	observeWatch(t, s, "busy", WatchObserveRequest{Graph: &g})

	wt, ok := s.watches.get("busy")
	if !ok {
		t.Fatal("watch vanished")
	}
	wt.obsMu.Lock() // an observe is mining right now
	defer wt.obsMu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var list []WatchInfo
		if code := doJSON(t, s, http.MethodGet, "/v1/watches", nil, &list); code != http.StatusOK || len(list) != 1 {
			t.Errorf("list during solve: status %d, %d watches", code, len(list))
		}
		var info WatchInfo
		if code := doJSON(t, s, http.MethodGet, "/v1/watches/busy", nil, &info); code != http.StatusOK || info.Step != 1 {
			t.Errorf("info during solve: status %d, step %d", code, info.Step)
		}
		var reports WatchReportsResponse
		if code := doJSON(t, s, http.MethodGet, "/v1/watches/busy/reports", nil, &reports); code != http.StatusOK || len(reports.Reports) != 1 {
			t.Errorf("reports during solve: status %d, %d reports", code, len(reports.Reports))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watch reads blocked behind an in-flight observe")
	}
}

// TestWatchEndToEnd is the acceptance test: a planted dense subgraph
// injected at step k of a synthetic stream is reported at step k and
// absorbed (not re-reported) within a few subsequent steps — and feeding the
// same stream as edge deltas produces reports equivalent to full snapshot
// feeding (same verdicts and sets, contrasts equal up to the incremental
// engine's floating-point tolerance).
func TestWatchEndToEnd(t *testing.T) {
	const (
		n      = 60
		steps  = 10
		inject = 5
	)
	clique := []int{7, 19, 33, 48}
	snaps := watchStream(7, n, steps, inject, clique)

	s := New(Config{})
	// Lambda 0.7 absorbs fast; MinDensity 4 sits above both the cold-start
	// residue (the whole backbone leaves ~0.3 of its density in the step-2
	// difference) and the per-step noise, but far below the planted clique.
	cfg := WatchRequest{N: n, Lambda: 0.7, MinDensity: 4}
	cfg.Name = "full"
	registerTestWatch(t, s, cfg)
	cfg.Name = "delta"
	registerTestWatch(t, s, cfg)

	prev := GraphJSON{N: n}
	var fullReports, deltaReports []WatchReport
	for i, snap := range snaps {
		fullReports = append(fullReports,
			observeWatch(t, s, "full", WatchObserveRequest{Graph: &snaps[i]}))
		deltaReports = append(deltaReports,
			observeWatch(t, s, "delta", WatchObserveRequest{Delta: DeltaBetween(prev, snap)}))
		prev = snap
	}

	// The planted clique surfaces exactly when injected...
	rep := fullReports[inject-1]
	if !rep.Anomalous {
		t.Fatalf("injection step %d not reported: %+v", inject, rep)
	}
	members := map[int]bool{}
	for _, v := range rep.S {
		members[v] = true
	}
	for _, m := range clique {
		if !members[m] {
			t.Fatalf("report %v misses planted member %d", rep.S, m)
		}
	}
	// ...the steady prefix is quiet after the two-step cold start (against a
	// fresh empty expectation, the entire backbone is "new")...
	for _, r := range fullReports[2 : inject-1] {
		if r.Anomalous {
			t.Fatalf("steady step %d misreported anomalous: %+v", r.Step, r)
		}
	}
	// ...and the persistent clique is absorbed, not re-reported forever.
	absorbed := false
	for _, r := range fullReports[inject:] {
		if !r.Anomalous {
			absorbed = true
		}
	}
	if !absorbed {
		t.Fatalf("planted clique never absorbed: %+v", fullReports[inject:])
	}

	// Delta feeding is equivalent to full-snapshot feeding: identical
	// verdicts and vertex sets, contrasts within floating-point tolerance
	// (the incremental path maintains the difference graph as a lazily
	// scaled accumulator, so the arithmetic is not bitwise the snapshot
	// path's), and every delta tick carries a mode tag.
	for i := range fullReports {
		f, d := fullReports[i], deltaReports[i]
		if f.Step != d.Step || f.Anomalous != d.Anomalous || f.Interrupted != d.Interrupted ||
			!approxEq(f.Contrast, d.Contrast) || !approxEq(f.Affinity, d.Affinity) ||
			fmt.Sprint(f.S) != fmt.Sprint(d.S) {
			t.Fatalf("step %d: delta report %+v differs from full report %+v", i+1, d, f)
		}
		if f.Mode != "scratch" {
			t.Fatalf("step %d: full report mode %q, want scratch", i+1, f.Mode)
		}
		if d.Mode != "scratch" && d.Mode != "incremental" {
			t.Fatalf("step %d: delta report mode %q", i+1, d.Mode)
		}
	}

	// The health counters saw both paths.
	st := s.watches.stats()
	if st.Observations != 2*steps || st.ScratchTicks+st.IncrementalTicks != st.Observations {
		t.Fatalf("tick counters don't add up: %+v", st)
	}
	if st.IncrementalTicks == 0 {
		t.Fatalf("no incremental ticks recorded: %+v", st)
	}
}

// approxEq compares two solver outputs up to the relative tolerance the
// incremental engine's rescaled arithmetic can accumulate.
func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestSnapshotDelete(t *testing.T) {
	s := New(Config{})
	upload(t, s)
	// Populate the difference cache for the pair about to be deleted.
	doJSON(t, s, http.MethodPost, "/v1/dcs", DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}, nil)
	if st := s.DiffCacheStats(); st.Len != 1 {
		t.Fatalf("cache len %d, want 1", st.Len)
	}

	if code := doJSON(t, s, http.MethodDelete, "/v1/snapshots/old", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	// The deleted snapshot is gone from the registry and from the cache.
	var list []SnapshotInfo
	doJSON(t, s, http.MethodGet, "/v1/snapshots", nil, &list)
	if len(list) != 1 || list[0].Name != "new" {
		t.Fatalf("unexpected list after delete: %+v", list)
	}
	if st := s.DiffCacheStats(); st.Len != 0 {
		t.Fatalf("cache still holds %d entries after snapshot delete", st.Len)
	}
	// Mining against it now fails cleanly; deleting again 404s.
	if code := doJSON(t, s, http.MethodPost, "/v1/dcs", DCSRequest{Measure: "avgdeg", G1: "old", G2: "new"}, nil); code != http.StatusBadRequest {
		t.Fatalf("dcs against deleted snapshot: status %d, want 400", code)
	}
	if code := doJSON(t, s, http.MethodDelete, "/v1/snapshots/old", nil, nil); code != http.StatusNotFound {
		t.Fatalf("re-delete: status %d, want 404", code)
	}
	// Re-uploading after delete CONTINUES the version sequence: reusing
	// version 1 would resurrect the deleted graph's (name, version) identity
	// and let an in-flight diff-cache insert pass its currency check against
	// the wrong graph.
	g1, _ := fig1Pair()
	var info SnapshotInfo
	doJSON(t, s, http.MethodPost, "/v1/snapshots", SnapshotRequest{Name: "old", GraphJSON: g1}, &info)
	if info.Version != 2 {
		t.Fatalf("re-created snapshot version %d, want 2 (versions are monotonic across delete)", info.Version)
	}
	// Method and path hygiene.
	if code := doJSON(t, s, http.MethodGet, "/v1/snapshots/old", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET by name: status %d, want 405", code)
	}
	if code := doJSON(t, s, http.MethodDelete, "/v1/snapshots/", nil, nil); code != http.StatusNotFound {
		t.Fatalf("empty name: status %d, want 404", code)
	}
}
