// Package topics mines emerging and disappearing topics from two corpora of
// document titles, the application of Section VI-C of "Mining Density
// Contrast Subgraphs" (ICDE 2018): titles are tokenized into keywords, each
// era becomes a keyword-association graph (edge weight = 100 × the fraction
// of titles containing both keywords, following Angel et al. PVLDB'12), and
// the density-contrast cliques of the two graphs are the trends.
//
//	m := topics.Build(titles1998to2007, titles2008to2017, topics.Options{})
//	for _, t := range m.Emerging(5) {
//	    fmt.Println(t) // e.g. "social (0.5), networks (0.5)"
//	}
package topics

import (
	itopics "github.com/dcslib/dcs/internal/topics"
)

// Options configures the pipeline (stopwords, frequency cut-offs, solver).
type Options = itopics.Options

// Model holds the shared vocabulary and the per-era association graphs.
type Model = itopics.Model

// Topic is a mined keyword group with per-keyword simplex weights.
type Topic = itopics.Topic

// DefaultStopwords is the built-in English stopword list.
var DefaultStopwords = itopics.DefaultStopwords

// Build constructs the model from two corpora of titles (era 1, era 2).
func Build(era1, era2 []string, opt Options) *Model {
	return itopics.Build(era1, era2, opt)
}

// Tokenize lowercases, splits, and strips stopwords/short tokens.
func Tokenize(title string, opt Options) []string {
	return itopics.Tokenize(title, opt)
}
