package topics_test

import (
	"fmt"

	"github.com/dcslib/dcs/topics"
)

// Example mines a trend from two tiny corpora.
func Example() {
	era1 := []string{
		"mining association rules",
		"fast mining of association rules",
		"association rules with constraints",
		"time series indexing",
	}
	era2 := []string{
		"community detection in social networks",
		"influence in social networks",
		"social networks at scale",
		"time series indexing",
	}
	m := topics.Build(era1, era2, topics.Options{})
	fmt.Println("emerging:", m.Emerging(1)[0].String())
	fmt.Println("disappearing:", m.Disappearing(1)[0].String())
	// Output:
	// emerging: social (0.5), networks (0.5)
	// disappearing: mining (0.2), association (0.4), rules (0.4)
}

func ExampleTokenize() {
	fmt.Println(topics.Tokenize("The Large-Scale Mining of Graphs", topics.Options{}))
	// Output:
	// [large scale mining graphs]
}
